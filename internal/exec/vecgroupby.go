package exec

import (
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// evalGroupByVec evaluates a GROUP BY box vectorized. Three child shapes:
//
//   - base table: aggregation runs directly over the table's chunks;
//   - SELECT over one base table (the dominant shape of the paper's
//     star-schema aggregations: GROUP BY over scan+filter+projection): the
//     intermediate SELECT is fused away — its output-column expressions
//     substitute into the grouping and aggregate-argument expressions, its
//     predicates become chunk filters, and aggregation runs over the base
//     table's chunks. The fused child is not materialized and therefore not
//     memoized; in the workloads' plans a GROUP BY's select child has no
//     other consumer (DAG sharing happens at base-table boxes, which both
//     paths scan through the same fault site);
//   - anything else (joins, DISTINCT children, nested GROUP BYs): the child
//     evaluates through the normal box machinery — identical memoization,
//     budget accounting and errors to the row path — and its rows are
//     columnarized so the grouping itself still runs vectorized.
//
// In every shape, group and argument vectors are computed once per chunk and
// shared across all grouping sets, and per-worker partials merge in chunk
// order, so first-seen group order, each group's representative values, and
// (serially) even float SUM accumulation order are identical to the row path.
//
// handled=false declines to the row path (expressions beyond the child
// quantifier, non-aggregate output columns).
func (ev *evaluator) evalGroupByVec(b *qgm.Box) ([][]sqltypes.Value, bool, error) {
	if len(b.Quantifiers) != 1 || b.Quantifiers[0].Kind != qgm.ForEach {
		ev.obsv.Add(CtrVecDeclined, 1)
		return nil, false, nil
	}
	q := b.Quantifiers[0]
	child := q.Box

	// Non-grouping output columns must be aggregates (the row path's own
	// validation error covers the rest).
	type aggSpec struct {
		agg *qgm.Agg
		col int
	}
	var aggSpecs []aggSpec
	for i := range b.Cols {
		if b.IsGroupCol(i) {
			continue
		}
		agg, ok := b.Cols[i].Expr.(*qgm.Agg)
		if !ok {
			ev.obsv.Add(CtrVecDeclined, 1)
			return nil, false, nil
		}
		aggSpecs = append(aggSpecs, aggSpec{agg: agg, col: i})
	}
	nGroup := len(b.GroupBy)

	// Every grouping and aggregate-argument expression must range over the
	// box's single child quantifier; anything else (correlation, nested
	// aggregates) goes to the row path for its exact errors.
	noScalars := map[int]sqltypes.Value{}
	for _, col := range b.GroupBy {
		if !exprOverQuant(b.Cols[col].Expr, q.ID, noScalars) {
			ev.obsv.Add(CtrVecDeclined, 1)
			return nil, false, nil
		}
	}
	for _, spec := range aggSpecs {
		if !spec.agg.Star && !exprOverQuant(spec.agg.Arg, q.ID, noScalars) {
			ev.obsv.Add(CtrVecDeclined, 1)
			return nil, false, nil
		}
	}

	// Shape resolution: the fused base-table shapes first (aggregation runs
	// directly over storage chunks, nothing materialized), else evaluate the
	// child through the normal box machinery — identical memoization and
	// budget accounting to the row path — and columnarize its rows, so GROUP
	// BY over joins, DISTINCT children and nested GROUP BYs still aggregates
	// vectorized.
	var (
		filters []vecFilter
		groupKs []vecKernel
		argKs   []vecKernel
		chunks  []*storage.Chunk
		total   int
		ncols   int
		star    *starPlan
	)
	tryFused := func() (bool, error) {
		var baseQ *qgm.Quantifier
		var dimQs []*qgm.Quantifier
		var childPreds []qgm.Expr
		var childCols []qgm.QCL // nil: child IS the base table, no substitution
		scalarQs := []*qgm.Quantifier(nil)
		switch child.Kind {
		case qgm.BaseTableBox:
			baseQ = q
		case qgm.SelectBox:
			if child.Distinct {
				return false, nil
			}
			for _, cq := range child.Quantifiers {
				switch cq.Kind {
				case qgm.ForEach:
					if baseQ == nil {
						baseQ = cq
					} else {
						dimQs = append(dimQs, cq)
					}
				case qgm.Scalar:
					scalarQs = append(scalarQs, cq)
				}
			}
			if baseQ == nil || baseQ.Box.Kind != qgm.BaseTableBox {
				return false, nil
			}
			for _, dq := range dimQs {
				if dq.Box.Kind != qgm.BaseTableBox {
					return false, nil
				}
			}
			childPreds = child.Preds
			childCols = child.Cols
			for _, c := range childCols {
				if c.Expr == nil {
					return false, nil
				}
			}
		default:
			return false, nil
		}

		// Substitute the fused SELECT's output expressions into the grouping
		// and aggregate-argument expressions, then require everything to be
		// over the base quantifier (plus scalar subqueries).
		subst := func(e qgm.Expr) (qgm.Expr, bool) {
			if childCols == nil {
				return e, true
			}
			return substExpr(e, q.ID, childCols)
		}
		groupExprs := make([]qgm.Expr, nGroup)
		for pos, col := range b.GroupBy {
			e, ok := subst(b.Cols[col].Expr)
			if !ok {
				return false, nil
			}
			groupExprs[pos] = e
		}
		argExprs := make([]qgm.Expr, len(aggSpecs)) // nil for COUNT(*)
		for ai, spec := range aggSpecs {
			if spec.agg.Star {
				continue
			}
			e, ok := subst(spec.agg.Arg)
			if !ok {
				return false, nil
			}
			argExprs[ai] = e
		}

		// Scalar subqueries of the fused child evaluate once, as the row
		// path would when evaluating that child. A multi-row scalar falls
		// through to the materialized path, whose child evaluation raises
		// the exact error.
		scalars := map[int]sqltypes.Value{}
		for _, sq := range scalarQs {
			rows, err := ev.evalBox(sq.Box)
			if err != nil {
				return false, err
			}
			switch len(rows) {
			case 0:
				scalars[sq.ID] = sqltypes.Null
			case 1:
				scalars[sq.ID] = rows[0][0]
			default:
				return false, nil
			}
		}

		ectx := &exprCtx{scalars: scalars}
		ectx.setSlot(baseQ.ID, 0)
		vc := &vecCompiler{ev: ev, ectx: ectx, baseQID: baseQ.ID}

		if len(dimQs) == 0 {
			for _, p := range childPreds {
				if !exprOverQuant(p, baseQ.ID, scalars) {
					return false, nil
				}
			}
			for _, e := range groupExprs {
				if !exprOverQuant(e, baseQ.ID, scalars) {
					return false, nil
				}
			}
			for _, e := range argExprs {
				if e != nil && !exprOverQuant(e, baseQ.ID, scalars) {
					return false, nil
				}
			}
			filters = make([]vecFilter, len(childPreds))
			for i, p := range childPreds {
				filters[i] = vc.compileFilter(p)
			}
			groupKs = make([]vecKernel, nGroup)
			for pos, e := range groupExprs {
				groupKs[pos] = vc.compileScalar(e)
			}
			argKs = make([]vecKernel, len(aggSpecs))
			for ai, e := range argExprs {
				if e != nil {
					argKs[ai] = vc.compileScalar(e)
				}
			}
			var err error
			chunks, total, err = ev.scanChunks(baseQ.Box.Table.Name)
			if err != nil {
				return false, err
			}
			ncols = len(baseQ.Box.Cols)
			return true, nil
		}

		// Star shape: the remaining ForEach quantifiers are dimensions, each
		// reachable from the fact quantifier by equality predicates. classify
		// maps an expression to its single source: -1 the fact quantifier
		// (constants included), k the k-th dimension; mixed-source or
		// aggregate-bearing expressions resolve ok=false.
		dimOf := map[int]int{}
		for k, dq := range dimQs {
			dimOf[dq.ID] = k
		}
		classify := func(e qgm.Expr) (int, bool) {
			qs := sideQuants(e, scalars)
			if qs == nil {
				return 0, false
			}
			src, seenFact := -1, false
			for qi := range qs {
				if qi == baseQ.ID {
					seenFact = true
					continue
				}
				k, isDim := dimOf[qi]
				if !isDim || (src >= 0 && src != k) {
					return 0, false
				}
				src = k
			}
			if seenFact && src >= 0 {
				return 0, false
			}
			return src, true
		}

		// Partition the child predicates: fact-local (chunk filters),
		// dim-local (applied while building the dim hash), and fact↔dim
		// equality join keys. Any other shape — dim↔dim keys, non-equality
		// cross-quantifier predicates, constant predicates — falls back.
		var factPreds []qgm.Expr
		dimPreds := make([][]qgm.Expr, len(dimQs))
		factKeys := make([][]qgm.Expr, len(dimQs))
		dimKeys := make([][]qgm.Expr, len(dimQs))
		for _, p := range childPreds {
			if src, ok := classify(p); ok {
				if src == -1 {
					if qs := sideQuants(p, scalars); len(qs) == 0 {
						return false, nil // constant predicate: row path semantics
					}
					factPreds = append(factPreds, p)
				} else {
					dimPreds[src] = append(dimPreds[src], p)
				}
				continue
			}
			bin, isBin := p.(*qgm.Bin)
			if !isBin || bin.Op != "=" {
				return false, nil
			}
			lsrc, lok := classify(bin.L)
			rsrc, rok := classify(bin.R)
			if !lok || !rok {
				return false, nil
			}
			switch {
			case lsrc == -1 && rsrc >= 0:
				factKeys[rsrc] = append(factKeys[rsrc], bin.L)
				dimKeys[rsrc] = append(dimKeys[rsrc], bin.R)
			case rsrc == -1 && lsrc >= 0:
				factKeys[lsrc] = append(factKeys[lsrc], bin.R)
				dimKeys[lsrc] = append(dimKeys[lsrc], bin.L)
			default:
				return false, nil
			}
		}
		for k := range dimQs {
			if len(factKeys[k]) == 0 {
				return false, nil // cross join: row path order semantics
			}
		}

		// Classify grouping and argument expressions by source.
		sp := &starPlan{
			groupSrc:     make([]int, nGroup),
			argSrc:       make([]int, len(aggSpecs)),
			dimGroupVals: make([][]sqltypes.Value, nGroup),
			dimArgVals:   make([][]sqltypes.Value, len(aggSpecs)),
		}
		for pos, e := range groupExprs {
			src, ok := classify(e)
			if !ok {
				return false, nil
			}
			sp.groupSrc[pos] = src
		}
		for ai, e := range argExprs {
			sp.argSrc[ai] = -1
			if e == nil {
				continue
			}
			src, ok := classify(e)
			if !ok {
				return false, nil
			}
			sp.argSrc[ai] = src
		}

		// Build each dimension: evaluate its rows through the normal box
		// machinery (memoized, same budget charges as the row path), filter
		// by its local predicates, hash its join-key values, and precompute
		// every dim-sourced grouping/argument expression per row. The row
		// path only ever evaluates these on rows that survive the join, so
		// any evaluation error here falls back to the materialized path,
		// which reproduces row-path behavior exactly.
		sp.dims = make([]starDim, len(dimQs))
		for k, dq := range dimQs {
			dimRows, err := ev.evalBox(dq.Box)
			if err != nil {
				return false, err
			}
			dctx := &exprCtx{scalars: scalars}
			dctx.setSlot(dq.ID, 0)
			predKs := make([]predKernel, len(dimPreds[k]))
			for i, p := range dimPreds[k] {
				if ev.interp {
					p := p
					predKs[i] = func(bd binding) (sqltypes.Tri, error) { return dctx.evalPred(p, bd) }
					continue
				}
				pk, ok := dctx.compilePred(p)
				ev.countCompile(ok)
				predKs[i] = pk
			}
			keyKs := make([]scalarKernel, len(dimKeys[k]))
			for i, e := range dimKeys[k] {
				keyKs[i] = ev.scalarKernel(dctx, e)
			}
			sd := starDim{table: map[string][]int32{}}
			bd := make(binding, 1)
			var kbuf []byte
			for ri, r := range dimRows {
				bd[0] = r
				pass := true
				for _, pk := range predKs {
					tv, err := pk(bd)
					if err != nil {
						return false, nil
					}
					if tv != sqltypes.True {
						pass = false
						break
					}
				}
				if !pass {
					continue
				}
				kbuf = kbuf[:0]
				null := false
				for _, kk := range keyKs {
					v, err := kk(bd)
					if err != nil {
						return false, nil
					}
					if v.IsNull() {
						null = true
						break
					}
					kbuf = sqltypes.AppendBinKeyValue(kbuf, v)
					kbuf = append(kbuf, 0)
				}
				if null {
					continue // NULL join keys never match
				}
				sd.table[string(kbuf)] = append(sd.table[string(kbuf)], int32(ri))
			}
			for _, e := range factKeys[k] {
				sd.keyKs = append(sd.keyKs, vc.compileScalar(e))
			}
			evalPerRow := func(e qgm.Expr) ([]sqltypes.Value, bool) {
				rk := ev.scalarKernel(dctx, e)
				vals := make([]sqltypes.Value, len(dimRows))
				for ri, r := range dimRows {
					bd[0] = r
					v, err := rk(bd)
					if err != nil {
						return nil, false
					}
					vals[ri] = v
				}
				return vals, true
			}
			for pos, e := range groupExprs {
				if sp.groupSrc[pos] != k {
					continue
				}
				vals, ok := evalPerRow(e)
				if !ok {
					return false, nil
				}
				sp.dimGroupVals[pos] = vals
			}
			for ai, e := range argExprs {
				if sp.argSrc[ai] != k || e == nil {
					continue
				}
				vals, ok := evalPerRow(e)
				if !ok {
					return false, nil
				}
				sp.dimArgVals[ai] = vals
			}
			sp.dims[k] = sd
		}

		// Fact-side compilation; the shared aggregation loop reads gvecs and
		// avecs in the join-output tuple domain, so fact-sourced kernels are
		// gathered through the tuple fact indices after the probe.
		filters = make([]vecFilter, len(factPreds))
		for i, p := range factPreds {
			filters[i] = vc.compileFilter(p)
		}
		groupKs = make([]vecKernel, nGroup)
		for pos, e := range groupExprs {
			if sp.groupSrc[pos] == -1 {
				groupKs[pos] = vc.compileScalar(e)
			}
		}
		argKs = make([]vecKernel, len(aggSpecs))
		for ai, e := range argExprs {
			if e != nil && sp.argSrc[ai] == -1 {
				argKs[ai] = vc.compileScalar(e)
			}
		}

		var err error
		chunks, total, err = ev.scanChunks(baseQ.Box.Table.Name)
		if err != nil {
			return false, err
		}
		ncols = len(baseQ.Box.Cols)
		star = sp
		return true, nil
	}
	fused, err := tryFused()
	if err != nil {
		return nil, true, err
	}
	if !fused {
		rows, err := ev.evalBox(child)
		if err != nil {
			return nil, true, err
		}
		ncols = len(child.Cols)
		ectx := &exprCtx{scalars: noScalars}
		ectx.setSlot(q.ID, 0)
		vc := &vecCompiler{ev: ev, ectx: ectx, baseQID: q.ID}
		groupKs = make([]vecKernel, nGroup)
		for pos, col := range b.GroupBy {
			groupKs[pos] = vc.compileScalar(b.Cols[col].Expr)
		}
		argKs = make([]vecKernel, len(aggSpecs))
		for ai, spec := range aggSpecs {
			if !spec.agg.Star {
				argKs[ai] = vc.compileScalar(spec.agg.Arg)
			}
		}
		filters = nil
		chunks = columnarize(rows, ncols)
		total = len(rows)
	}

	sets := b.GroupingSets
	if len(sets) == 0 {
		sets = [][]int{allInts(nGroup)}
	}

	// One aggregation pass over the chunks computes every grouping set:
	// group/argument vectors are evaluated once per chunk, then each set
	// accumulates its own partial. Set-major within each chunk and chunk-major
	// merging keeps every per-set ordering identical to the row path's
	// set-major-over-all-rows order.
	type vecGroup struct {
		repr []sqltypes.Value // grouping values at the group's first row
		aggs []aggState
	}
	type setPartial struct {
		groups map[string]*vecGroup
		order  []string
	}

	workers := ev.workersFor(total)
	partials := make([][]setPartial, workers)
	err = ev.parallelChunks(len(chunks), workers, func(w, lo, hi int, chg *charger) error {
		cs := newChunkState(ncols)
		var ss *starScratch
		if star != nil {
			ss = newStarScratch(star)
		}
		sp := make([]setPartial, len(sets))
		for si := range sp {
			sp[si].groups = map[string]*vecGroup{}
		}
		gvecs := make([]*sqltypes.Vec, nGroup)
		avecs := make([]*sqltypes.Vec, len(aggSpecs))
		accums := make([]accumFn, len(aggSpecs))
		var buf []byte
		for ci := lo; ci < hi; ci++ {
			cs.reset(chunks[ci])
			for _, f := range filters {
				if err := f(cs); err != nil {
					return err
				}
				if cs.n() == 0 {
					break
				}
			}
			n := cs.n()
			if n == 0 {
				continue
			}
			if ss != nil {
				// Star shape: probe the dimension hash tables with this
				// chunk's fact keys and synthesize group/argument vectors in
				// the join-output tuple domain.
				var err error
				n, err = ss.expand(cs, groupKs, argKs, gvecs, avecs)
				if err != nil {
					return err
				}
				if n == 0 {
					continue
				}
			} else {
				for pos, k := range groupKs {
					v, err := k(cs)
					if err != nil {
						return err
					}
					gvecs[pos] = v
				}
				for ai, k := range argKs {
					if k == nil {
						continue
					}
					v, err := k(cs)
					if err != nil {
						return err
					}
					avecs[ai] = v
				}
			}
			// Kind dispatch per chunk, not per row: each aggregate gets a
			// typed accumulator over this chunk's argument vector.
			for ai := range aggSpecs {
				accums[ai] = buildAccum(aggSpecs[ai].agg, avecs[ai])
			}
			for si, gs := range sets {
				// The per-input-row budget charge lands on the first grouping
				// set, batched per chunk (same totals as the row path's fused
				// per-row charge).
				rowCharge := 0
				if si == 0 {
					rowCharge = n
				}
				if err := chg.checkpoint(rowCharge); err != nil {
					return err
				}
				p := &sp[si]
				for di := 0; di < n; di++ {
					buf = buf[:0]
					for _, pos := range gs {
						buf = gvecs[pos].AppendBinKey(buf, di)
						buf = append(buf, 0)
					}
					g, ok := p.groups[string(buf)]
					if !ok {
						g = &vecGroup{
							repr: make([]sqltypes.Value, nGroup),
							aggs: make([]aggState, len(aggSpecs)),
						}
						for _, pos := range gs {
							g.repr[pos] = gvecs[pos].Value(di)
						}
						k := string(buf)
						p.groups[k] = g
						p.order = append(p.order, k)
					}
					for ai, fn := range accums {
						if err := fn(&g.aggs[ai], di); err != nil {
							return err
						}
					}
				}
			}
		}
		partials[w] = sp
		return nil
	})
	if err != nil {
		return nil, true, err
	}

	// Merge workers' per-set partials in chunk order.
	merged := make([]setPartial, len(sets))
	for si := range sets {
		merged[si] = partials[0][si]
		for _, sp := range partials[1:] {
			for _, k := range sp[si].order {
				o := sp[si].groups[k]
				g, ok := merged[si].groups[k]
				if !ok {
					merged[si].groups[k] = o
					merged[si].order = append(merged[si].order, k)
					continue
				}
				for ai := range aggSpecs {
					if err := g.aggs[ai].merge(aggSpecs[ai].agg, &o.aggs[ai]); err != nil {
						return nil, true, err
					}
				}
			}
		}
	}

	var out [][]sqltypes.Value
	for si, gs := range sets {
		inSet := make([]bool, nGroup)
		for _, pos := range gs {
			inSet[pos] = true
		}
		p := merged[si]
		// A global aggregate (empty grouping set) over empty input produces
		// one row: COUNT is 0 and the other aggregates are NULL.
		if len(gs) == 0 && len(p.order) == 0 {
			row := make([]sqltypes.Value, len(b.Cols))
			for _, col := range b.GroupBy {
				row[col] = sqltypes.Null
			}
			empty := newGroupState(len(aggSpecs))
			for ai, spec := range aggSpecs {
				row[spec.col] = empty.aggs[ai].result(spec.agg)
			}
			out = append(out, row)
			continue
		}
		for _, k := range p.order {
			if err := ev.checkpoint(1); err != nil {
				return nil, true, err
			}
			g := p.groups[k]
			row := make([]sqltypes.Value, len(b.Cols))
			for pos, col := range b.GroupBy {
				if !inSet[pos] {
					row[col] = sqltypes.Null
				} else {
					row[col] = g.repr[pos]
				}
			}
			for ai, spec := range aggSpecs {
				row[spec.col] = g.aggs[ai].result(spec.agg)
			}
			out = append(out, row)
		}
	}
	ev.obsv.Add(CtrVecBoxes, 1)
	ev.usedVector = true
	return out, true, nil
}

// columnarize builds read-only chunks from materialized child rows so the
// grouping loop can run vectorized over any child shape. Row order is
// preserved, so chunk-order merging keeps the row path's group order.
func columnarize(rows [][]sqltypes.Value, ncols int) []*storage.Chunk {
	var chunks []*storage.Chunk
	for lo := 0; lo < len(rows); lo += storage.ChunkRows {
		hi := lo + storage.ChunkRows
		if hi > len(rows) {
			hi = len(rows)
		}
		c := &storage.Chunk{N: hi - lo, Cols: make([]sqltypes.Vec, ncols)}
		for _, r := range rows[lo:hi] {
			for ci := 0; ci < ncols; ci++ {
				c.Cols[ci].AppendValue(r[ci])
			}
		}
		chunks = append(chunks, c)
	}
	return chunks
}

// substExpr rewrites e, replacing every reference to quantifier qid's column
// c with cols[c].Expr (the fused SELECT child's output expression). Shared
// subtrees are fine — expressions are immutable. Returns ok=false on an
// unknown node shape, declining the fusion.
func substExpr(e qgm.Expr, qid int, cols []qgm.QCL) (qgm.Expr, bool) {
	switch t := e.(type) {
	case *qgm.ColRef:
		if t.Q != nil && t.Q.ID == qid {
			if t.Col < 0 || t.Col >= len(cols) || cols[t.Col].Expr == nil {
				return nil, false
			}
			return cols[t.Col].Expr, true
		}
		return t, true
	case *qgm.Const:
		return t, true
	case *qgm.Call:
		args := make([]qgm.Expr, len(t.Args))
		for i, a := range t.Args {
			na, ok := substExpr(a, qid, cols)
			if !ok {
				return nil, false
			}
			args[i] = na
		}
		return &qgm.Call{Name: t.Name, Args: args}, true
	case *qgm.Bin:
		l, lok := substExpr(t.L, qid, cols)
		r, rok := substExpr(t.R, qid, cols)
		if !lok || !rok {
			return nil, false
		}
		return &qgm.Bin{Op: t.Op, L: l, R: r}, true
	case *qgm.Not:
		inner, ok := substExpr(t.E, qid, cols)
		if !ok {
			return nil, false
		}
		return &qgm.Not{E: inner}, true
	case *qgm.IsNull:
		inner, ok := substExpr(t.E, qid, cols)
		if !ok {
			return nil, false
		}
		return &qgm.IsNull{E: inner, Neg: t.Neg}, true
	case *qgm.Like:
		v, vok := substExpr(t.E, qid, cols)
		p, pok := substExpr(t.Pattern, qid, cols)
		if !vok || !pok {
			return nil, false
		}
		return &qgm.Like{E: v, Pattern: p, Neg: t.Neg}, true
	case *qgm.Agg:
		if t.Star {
			return t, true
		}
		a, ok := substExpr(t.Arg, qid, cols)
		if !ok {
			return nil, false
		}
		return &qgm.Agg{Op: t.Op, Arg: a, Star: t.Star, Distinct: t.Distinct}, true
	case *qgm.Case:
		whens := make([]qgm.CaseWhen, len(t.Whens))
		for i, w := range t.Whens {
			c, cok := substExpr(w.Cond, qid, cols)
			th, tok := substExpr(w.Then, qid, cols)
			if !cok || !tok {
				return nil, false
			}
			whens[i] = qgm.CaseWhen{Cond: c, Then: th}
		}
		var els qgm.Expr
		if t.Else != nil {
			var ok bool
			els, ok = substExpr(t.Else, qid, cols)
			if !ok {
				return nil, false
			}
		}
		return &qgm.Case{Whens: whens, Else: els}, true
	default:
		return nil, false
	}
}

// accumFn folds element di of one chunk's argument vector into a group's
// aggregate state. Accumulators are built once per (aggregate, chunk) so kind
// dispatch happens per chunk rather than per row; the fast paths mutate the
// same aggState fields the row engine's accumulate does and fall back to it
// for anything outside count/sum over typed numeric vectors, so merge and
// result semantics are unchanged.
type accumFn func(s *aggState, di int) error

func buildAccum(spec *qgm.Agg, av *sqltypes.Vec) accumFn {
	if spec.Star {
		return func(s *aggState, _ int) error { s.count++; return nil }
	}
	boxed := func(s *aggState, di int) error { return s.accumulate(spec, av.Value(di)) }
	if av.Generic() {
		return boxed
	}
	if spec.Distinct {
		// Binary keys instead of the row engine's decimal GroupKey: the
		// equivalence classes are identical and distinct sets built by the
		// vectorized path are only ever merged with each other. First value
		// of a class wins as its representative (the row engine keeps the
		// last); observable only through the result kind of SUM/MIN/MAX
		// DISTINCT over classes mixing int and float spellings.
		var kbuf []byte
		return func(s *aggState, di int) error {
			if av.IsNull(di) {
				return nil
			}
			kbuf = av.AppendBinKey(kbuf[:0], di)
			if s.distinct == nil {
				s.distinct = map[string]sqltypes.Value{}
			}
			if _, ok := s.distinct[string(kbuf)]; !ok {
				s.distinct[string(kbuf)] = av.Value(di)
			}
			return nil
		}
	}
	nulls := av.HasNulls()
	switch spec.Op {
	case "count":
		return func(s *aggState, di int) error {
			if nulls && av.IsNull(di) {
				return nil
			}
			s.count++
			return nil
		}
	case "sum":
		switch av.Kind() {
		case sqltypes.KindFloat:
			fs := av.Floats
			return func(s *aggState, di int) error {
				if nulls && av.IsNull(di) {
					return nil
				}
				f := fs[di]
				if !s.sumSet {
					s.sum, s.sumSet = sqltypes.NewFloat(f), true
					return nil
				}
				if s.sum.Kind() == sqltypes.KindFloat {
					s.sum = sqltypes.NewFloat(s.sum.Float() + f)
					return nil
				}
				v, err := sqltypes.Add(s.sum, sqltypes.NewFloat(f))
				if err != nil {
					return err
				}
				s.sum = v
				return nil
			}
		case sqltypes.KindInt:
			xs := av.Ints
			return func(s *aggState, di int) error {
				if nulls && av.IsNull(di) {
					return nil
				}
				x := xs[di]
				if !s.sumSet {
					s.sum, s.sumSet = sqltypes.NewInt(x), true
					return nil
				}
				if s.sum.Kind() == sqltypes.KindInt {
					s.sum = sqltypes.NewInt(s.sum.Int() + x)
					return nil
				}
				v, err := sqltypes.Add(s.sum, sqltypes.NewInt(x))
				if err != nil {
					return err
				}
				s.sum = v
				return nil
			}
		}
	case "min", "max":
		// Typed extrema: the strict-inequality updates match Compare's
		// cmpInt/cmpFloat exactly (ties and NaN comparisons keep the current
		// extremum). If the state holds a different kind — earlier chunks of
		// another payload kind — fall through to the boxed comparison.
		switch av.Kind() {
		case sqltypes.KindInt:
			xs := av.Ints
			return func(s *aggState, di int) error {
				if nulls && av.IsNull(di) {
					return nil
				}
				x := xs[di]
				if !s.extSet {
					v := sqltypes.NewInt(x)
					s.minV, s.maxV, s.extSet = v, v, true
					return nil
				}
				if s.minV.Kind() == sqltypes.KindInt && s.maxV.Kind() == sqltypes.KindInt {
					if x < s.minV.Int() {
						s.minV = sqltypes.NewInt(x)
					}
					if x > s.maxV.Int() {
						s.maxV = sqltypes.NewInt(x)
					}
					return nil
				}
				return s.accumulate(spec, sqltypes.NewInt(x))
			}
		case sqltypes.KindFloat:
			fs := av.Floats
			return func(s *aggState, di int) error {
				if nulls && av.IsNull(di) {
					return nil
				}
				f := fs[di]
				if !s.extSet {
					v := sqltypes.NewFloat(f)
					s.minV, s.maxV, s.extSet = v, v, true
					return nil
				}
				if s.minV.Kind() == sqltypes.KindFloat && s.maxV.Kind() == sqltypes.KindFloat {
					if f < s.minV.Float() {
						s.minV = sqltypes.NewFloat(f)
					}
					if f > s.maxV.Float() {
						s.maxV = sqltypes.NewFloat(f)
					}
					return nil
				}
				return s.accumulate(spec, sqltypes.NewFloat(f))
			}
		}
	}
	return boxed
}

// starPlan is the resolved star-join GROUP BY shape: a fact base table scanned
// in chunks, plus one hash table per dimension quantifier keyed by the
// fact↔dim equality predicates. Dimension rows are fully evaluated at plan
// time (they are small by assumption — the fact table drives the cost), so the
// per-chunk work is probe + tuple expansion only.
type starPlan struct {
	dims []starDim

	// groupSrc/argSrc give each grouping (resp. aggregate-argument)
	// expression's source: -1 the fact quantifier, k the k-th dimension.
	groupSrc []int
	argSrc   []int

	// Per-dim-row precomputed values for dim-sourced expressions, indexed by
	// raw dimension row number (the indices stored in starDim.table).
	dimGroupVals [][]sqltypes.Value
	dimArgVals   [][]sqltypes.Value
}

// starDim is one dimension: fact-side key kernels (vectorized, evaluated per
// chunk) and the hash table from binary-encoded key to matching dim row
// numbers, in dim row order. Rows failing the dimension's local predicates or
// carrying NULL keys are absent (NULL join keys never match, as in hashJoin).
type starDim struct {
	keyKs []vecKernel
	table map[string][]int32
}

// starScratch is per-worker star expansion state.
type starScratch struct {
	sp    *starPlan
	kv    [][]*sqltypes.Vec // per dim: fact key vectors for the current chunk
	match [][]int32         // per dim: matched dim rows for the current fact row
	ctr   []int             // odometer counters
	fdi   []int32           // per output tuple: fact index (selection domain)
	ddi   [][]int32         // per dim, per output tuple: dim row number
	kbuf  []byte
}

func newStarScratch(sp *starPlan) *starScratch {
	nd := len(sp.dims)
	ss := &starScratch{
		sp:    sp,
		kv:    make([][]*sqltypes.Vec, nd),
		match: make([][]int32, nd),
		ctr:   make([]int, nd),
		ddi:   make([][]int32, nd),
	}
	for k := range ss.kv {
		ss.kv[k] = make([]*sqltypes.Vec, len(sp.dims[k].keyKs))
	}
	return ss
}

// expand joins the chunk's surviving fact rows against every dimension and
// fills gvecs/avecs with tuple-domain vectors, returning the tuple count.
// Tuple order matches the row path's join order: fact-row major, earlier
// dimensions outer, the last dimension varying fastest.
func (ss *starScratch) expand(cs *chunkState, groupKs, argKs []vecKernel, gvecs, avecs []*sqltypes.Vec) (int, error) {
	sp := ss.sp
	n := cs.n()
	for k := range sp.dims {
		for j, kk := range sp.dims[k].keyKs {
			v, err := kk(cs)
			if err != nil {
				return 0, err
			}
			ss.kv[k][j] = v
		}
	}
	ss.fdi = ss.fdi[:0]
	for k := range ss.ddi {
		ss.ddi[k] = ss.ddi[k][:0]
	}
	nd := len(sp.dims)
	for di := 0; di < n; di++ {
		matched := true
		for k := 0; k < nd; k++ {
			ss.kbuf = ss.kbuf[:0]
			null := false
			for _, v := range ss.kv[k] {
				if v.IsNull(di) {
					null = true
					break
				}
				ss.kbuf = v.AppendBinKey(ss.kbuf, di)
				ss.kbuf = append(ss.kbuf, 0)
			}
			if null {
				matched = false
				break
			}
			m := sp.dims[k].table[string(ss.kbuf)]
			if len(m) == 0 {
				matched = false
				break
			}
			ss.match[k] = m
		}
		if !matched {
			continue
		}
		for k := range ss.ctr {
			ss.ctr[k] = 0
		}
		for {
			ss.fdi = append(ss.fdi, int32(di))
			for k := 0; k < nd; k++ {
				ss.ddi[k] = append(ss.ddi[k], ss.match[k][ss.ctr[k]])
			}
			k := nd - 1
			for ; k >= 0; k-- {
				ss.ctr[k]++
				if ss.ctr[k] < len(ss.match[k]) {
					break
				}
				ss.ctr[k] = 0
			}
			if k < 0 {
				break
			}
		}
	}
	nOut := len(ss.fdi)
	if nOut == 0 {
		return 0, nil
	}
	for pos, k := range groupKs {
		if k != nil {
			v, err := k(cs)
			if err != nil {
				return 0, err
			}
			gvecs[pos] = gatherVec(v, ss.fdi)
		} else {
			gvecs[pos] = dimValueVec(sp.dimGroupVals[pos], ss.ddi[sp.groupSrc[pos]])
		}
	}
	for ai, k := range argKs {
		switch {
		case k != nil:
			v, err := k(cs)
			if err != nil {
				return 0, err
			}
			avecs[ai] = gatherVec(v, ss.fdi)
		case sp.argSrc[ai] >= 0:
			avecs[ai] = dimValueVec(sp.dimArgVals[ai], ss.ddi[sp.argSrc[ai]])
		}
	}
	return nOut, nil
}

// dimValueVec builds a tuple-domain vector from per-dim-row precomputed
// values through the tuple's dim row numbers.
func dimValueVec(vals []sqltypes.Value, idx []int32) *sqltypes.Vec {
	var v sqltypes.Vec
	for _, ri := range idx {
		v.AppendValue(vals[ri])
	}
	return &v
}
