package exec

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/workload"
)

// fixture builds the star schema with a small deterministic dataset.
func fixture(t testing.TB, n int) (*catalog.Catalog, *storage.Store, *Engine) {
	t.Helper()
	cat := catalog.New()
	workload.Schema(cat)
	store := storage.NewStore()
	workload.Load(cat, store, workload.StarConfig{NumTrans: n, Seed: 42})
	return cat, store, NewEngine(store)
}

func run(t testing.TB, cat *catalog.Catalog, e *Engine, sql string) *Result {
	t.Helper()
	g, err := qgm.BuildSQL(sql, cat)
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	res, err := e.Run(g)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return res
}

func TestSimpleScan(t *testing.T) {
	cat, store, e := fixture(t, 500)
	res := run(t, cat, e, "select tid, qty from trans")
	if len(res.Rows) != store.MustTable("trans").Cardinality() {
		t.Fatalf("got %d rows, want %d", len(res.Rows), store.MustTable("trans").Cardinality())
	}
	if len(res.Cols) != 2 || res.Cols[0] != "tid" || res.Cols[1] != "qty" {
		t.Fatalf("bad columns %v", res.Cols)
	}
}

func TestWherePredicate(t *testing.T) {
	cat, store, e := fixture(t, 500)
	res := run(t, cat, e, "select tid from trans where qty > 3")
	want := 0
	for _, r := range store.MustTable("trans").Rows() {
		if r[5].Int() > 3 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(res.Rows), want)
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	cat, store, e := fixture(t, 300)
	res := run(t, cat, e, "select tid, country from trans, loc where flid = lid and country = 'USA'")
	// Brute force.
	locs := map[int64]string{}
	for _, r := range store.MustTable("loc").Rows() {
		locs[r[0].Int()] = r[3].Str()
	}
	want := 0
	for _, r := range store.MustTable("trans").Rows() {
		if locs[r[3].Int()] == "USA" {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(res.Rows), want)
	}
}

func TestGroupByCount(t *testing.T) {
	cat, store, e := fixture(t, 400)
	res := run(t, cat, e, "select faid, count(*) as cnt from trans group by faid")
	counts := map[int64]int64{}
	for _, r := range store.MustTable("trans").Rows() {
		counts[r[1].Int()]++
	}
	if len(res.Rows) != len(counts) {
		t.Fatalf("got %d groups, want %d", len(res.Rows), len(counts))
	}
	for _, r := range res.Rows {
		if counts[r[0].Int()] != r[1].Int() {
			t.Fatalf("account %d: got %d, want %d", r[0].Int(), r[1].Int(), counts[r[0].Int()])
		}
	}
}

func TestQ1EndToEnd(t *testing.T) {
	cat, store, e := fixture(t, 2000)
	// Paper Figure 2, Q1 (threshold lowered so the small fixture has hits).
	res := run(t, cat, e, `
		select faid, state, year(date) as year, count(*) as cnt
		from trans, loc
		where flid = lid and country = 'USA'
		group by faid, state, year(date)
		having count(*) > 5`)

	// Brute force.
	type locInfo struct{ state, country string }
	locs := map[int64]locInfo{}
	for _, r := range store.MustTable("loc").Rows() {
		locs[r[0].Int()] = locInfo{r[2].Str(), r[3].Str()}
	}
	type key struct {
		faid  int64
		state string
		year  int64
	}
	counts := map[key]int64{}
	for _, r := range store.MustTable("trans").Rows() {
		li := locs[r[3].Int()]
		if li.country != "USA" {
			continue
		}
		counts[key{r[1].Int(), li.state, r[4].DateYear()}]++
	}
	want := map[key]int64{}
	for k, c := range counts {
		if c > 5 {
			want[k] = c
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		k := key{r[0].Int(), r[1].Str(), r[2].Int()}
		if want[k] != r[3].Int() {
			t.Fatalf("group %+v: got %d, want %d", k, r[3].Int(), want[k])
		}
	}
}

func TestScalarSubquery(t *testing.T) {
	cat, store, e := fixture(t, 150)
	res := run(t, cat, e, "select tid, (select count(*) from loc) as nloc from trans where qty >= 1")
	nloc := int64(store.MustTable("loc").Cardinality())
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range res.Rows {
		if r[1].Int() != nloc {
			t.Fatalf("got nloc=%d, want %d", r[1].Int(), nloc)
		}
	}
}

func TestDerivedTable(t *testing.T) {
	cat, _, e := fixture(t, 300)
	res1 := run(t, cat, e, `
		select year, count(*) as ycnt
		from (select year(date) as year, count(*) as cnt from trans group by year(date), faid) t
		group by year`)
	res2 := run(t, cat, e, "select year(date) as year, count(distinct faid) as n from trans group by year(date)")
	if len(res1.Rows) != len(res2.Rows) {
		t.Fatalf("year counts disagree: %d vs %d", len(res1.Rows), len(res2.Rows))
	}
}

// TestFigure12CubeSemantics reproduces the paper's Figure 12 sample exactly:
// an 8-row Trans table grouped by gs((flid, year), (year, faid)) — the paper
// shows the result of a grouping-sets query with NULL-padded columns.
func TestFigure12CubeSemantics(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "trans",
		Columns: []catalog.Column{
			{Name: "flid", Type: sqltypes.KindInt},
			{Name: "year", Type: sqltypes.KindInt},
			{Name: "faid", Type: sqltypes.KindInt},
		},
	})
	store := storage.NewStore()
	td := store.Create(mustTable(cat, "trans"))
	data := [][3]int64{
		{1, 1990, 100},
		{1, 1991, 100},
		{1, 1991, 200},
		{1, 1991, 300},
		{1, 1992, 100},
		{1, 1992, 400},
		{2, 1991, 400},
		{2, 1991, 400},
	}
	for _, d := range data {
		td.MustInsert(sqltypes.NewInt(d[0]), sqltypes.NewInt(d[1]), sqltypes.NewInt(d[2]))
	}
	e := NewEngine(store)
	res := run(t, cat, e, `
		select flid, year, faid, count(*) as cnt
		from trans
		group by grouping sets((flid, year), (year, faid))`)

	// Expected result from the paper's Figure 12 (flid, year, faid, cnt);
	// -1 encodes NULL.
	want := [][4]int64{
		{1, 1990, -1, 1},
		{1, 1991, -1, 3},
		{1, 1992, -1, 2},
		{2, 1991, -1, 2},
		{-1, 1990, 100, 1},
		{-1, 1991, 100, 1},
		{-1, 1991, 200, 1},
		{-1, 1991, 300, 1},
		{-1, 1992, 100, 1},
		{-1, 1992, 400, 1},
		{-1, 1991, 400, 2},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d:\n%v", len(res.Rows), len(want), res.Rows)
	}
	counts := map[[4]int64]int{}
	for _, r := range res.Rows {
		var k [4]int64
		for i, v := range r {
			if v.IsNull() {
				k[i] = -1
			} else {
				k[i] = v.Int()
			}
		}
		counts[k]++
	}
	for _, w := range want {
		if counts[w] != 1 {
			t.Fatalf("expected row %v exactly once, got %d; result %v", w, counts[w], res.Rows)
		}
	}
}

func mustTable(cat *catalog.Catalog, name string) *catalog.Table {
	tb, ok := cat.Table(name)
	if !ok {
		panic("missing table " + name)
	}
	return tb
}

func TestRollupSemantics(t *testing.T) {
	cat, store, e := fixture(t, 200)
	res := run(t, cat, e, `
		select year(date) as y, month(date) as m, count(*) as cnt
		from trans group by rollup(year(date), month(date))`)
	// The grand-total row should count everything.
	total := int64(store.MustTable("trans").Cardinality())
	var grand, yearTotals, monthRows int
	for _, r := range res.Rows {
		switch {
		case r[0].IsNull() && r[1].IsNull():
			grand++
			if r[2].Int() != total {
				t.Fatalf("grand total %d, want %d", r[2].Int(), total)
			}
		case !r[0].IsNull() && r[1].IsNull():
			yearTotals++
		default:
			monthRows++
		}
	}
	if grand != 1 {
		t.Fatalf("expected exactly one grand-total row, got %d", grand)
	}
	if yearTotals == 0 || monthRows == 0 {
		t.Fatalf("rollup missing levels: years=%d months=%d", yearTotals, monthRows)
	}
}

func TestDistinctAggregates(t *testing.T) {
	cat, store, e := fixture(t, 400)
	res := run(t, cat, e, "select count(distinct faid) as n from trans")
	distinct := map[int64]bool{}
	for _, r := range store.MustTable("trans").Rows() {
		distinct[r[1].Int()] = true
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != int64(len(distinct)) {
		t.Fatalf("got %v, want %d", res.Rows, len(distinct))
	}
}

func TestEqualResultsDetectsDifference(t *testing.T) {
	a := &Result{Cols: []string{"x"}, Rows: [][]sqltypes.Value{{sqltypes.NewInt(1)}}}
	b := &Result{Cols: []string{"x"}, Rows: [][]sqltypes.Value{{sqltypes.NewInt(2)}}}
	if msg := EqualResults(a, b); msg == "" {
		t.Fatal("expected difference")
	}
	if msg := EqualResults(a, a); msg != "" {
		t.Fatalf("expected equal, got %s", msg)
	}
}
