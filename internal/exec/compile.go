package exec

import (
	"fmt"

	"repro/internal/qgm"
	"repro/internal/sqltypes"
)

// This file lowers qgm.Expr trees into closures ("kernels") once per box, so
// the per-row path of scans, filters, hash-join keys, output expressions and
// GROUP BY pre-evaluation is direct closure calls instead of re-walking the
// tree through an interface type-switch. Kernels are compiled after the
// expression's quantifiers have their binding slots assigned (slot numbers
// and scalar-subquery values are baked in at compile time) and are read-only
// over the binding, so parallel workers share them freely. Any node shape the
// compiler does not handle falls back to a closure over the interpreter for
// that subtree — semantics, including error messages and three-valued logic,
// are identical by construction and pinned by the interpreted/compiled parity
// tests.

// scalarKernel evaluates one scalar expression against a binding.
type scalarKernel func(bd binding) (sqltypes.Value, error)

// predKernel evaluates one predicate against a binding under three-valued
// logic.
type predKernel func(bd binding) (sqltypes.Tri, error)

// compileScalar lowers e to a scalarKernel. The bool reports whether the
// whole subtree compiled without interpreter fallback (counted per expression
// for observability; a fallback kernel is still correct, just slower).
func (c *exprCtx) compileScalar(e qgm.Expr) (scalarKernel, bool) {
	switch t := e.(type) {
	case *qgm.ColRef:
		if t.Q == nil {
			return func(binding) (sqltypes.Value, error) {
				return sqltypes.Null, fmt.Errorf("exec: unbound column reference")
			}, true
		}
		qid := t.Q.ID
		if len(c.scalars) > 0 {
			if v, ok := c.scalars[qid]; ok {
				return func(binding) (sqltypes.Value, error) { return v, nil }, true
			}
		}
		slot := -1
		if qid < len(c.slots) {
			slot = c.slots[qid]
		}
		if slot < 0 {
			// Quantifier not slotted at compile time; keep the interpreter's
			// late-binding (and its exact error) for this reference.
			return c.fallbackScalar(e), false
		}
		col := t.Col
		return func(bd binding) (sqltypes.Value, error) {
			if slot >= len(bd) || bd[slot] == nil {
				return sqltypes.Null, fmt.Errorf("exec: quantifier q%d not in scope", qid)
			}
			row := bd[slot]
			if col >= len(row) {
				return sqltypes.Null, fmt.Errorf("exec: column %d out of range (row width %d)", col, len(row))
			}
			return row[col], nil
		}, true

	case *qgm.Const:
		v := t.Val
		return func(binding) (sqltypes.Value, error) { return v, nil }, true

	case *qgm.Call:
		arg, ok := c.compileScalar(t.Args[0])
		var fn func(sqltypes.Value) sqltypes.Value
		switch t.Name {
		case "year":
			fn = func(v sqltypes.Value) sqltypes.Value { return sqltypes.NewInt(v.DateYear()) }
		case "month":
			fn = func(v sqltypes.Value) sqltypes.Value { return sqltypes.NewInt(v.DateMonth()) }
		case "day":
			fn = func(v sqltypes.Value) sqltypes.Value { return sqltypes.NewInt(v.DateDay()) }
		default:
			name := t.Name
			return func(bd binding) (sqltypes.Value, error) {
				v, err := arg(bd)
				if err != nil {
					return sqltypes.Null, err
				}
				if v.IsNull() {
					return sqltypes.Null, nil
				}
				return sqltypes.Null, fmt.Errorf("exec: unknown function %q", name)
			}, ok
		}
		return func(bd binding) (sqltypes.Value, error) {
			v, err := arg(bd)
			if err != nil {
				return sqltypes.Null, err
			}
			if v.IsNull() {
				return sqltypes.Null, nil
			}
			return fn(v), nil
		}, ok

	case *qgm.Bin:
		switch t.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			pk, ok := c.compilePred(t)
			return func(bd binding) (sqltypes.Value, error) {
				tv, err := pk(bd)
				if err != nil {
					return sqltypes.Null, err
				}
				return tv.Value(), nil
			}, ok
		}
		l, lok := c.compileScalar(t.L)
		r, rok := c.compileScalar(t.R)
		var fn func(a, b sqltypes.Value) (sqltypes.Value, error)
		switch t.Op {
		case "||":
			fn = sqltypes.Concat
		case "+":
			fn = sqltypes.Add
		case "-":
			fn = sqltypes.Sub
		case "*":
			fn = sqltypes.Mul
		case "/":
			fn = sqltypes.Div
		case "%":
			fn = sqltypes.Mod
		default:
			op := t.Op
			fn = func(a, b sqltypes.Value) (sqltypes.Value, error) {
				return sqltypes.Null, fmt.Errorf("exec: unknown operator %q", op)
			}
		}
		return func(bd binding) (sqltypes.Value, error) {
			lv, err := l(bd)
			if err != nil {
				return sqltypes.Null, err
			}
			rv, err := r(bd)
			if err != nil {
				return sqltypes.Null, err
			}
			return fn(lv, rv)
		}, lok && rok

	case *qgm.Not, *qgm.IsNull, *qgm.Like:
		pk, ok := c.compilePred(e)
		return func(bd binding) (sqltypes.Value, error) {
			tv, err := pk(bd)
			if err != nil {
				return sqltypes.Null, err
			}
			return tv.Value(), nil
		}, ok

	case *qgm.Agg:
		msg := t.String()
		return func(binding) (sqltypes.Value, error) {
			return sqltypes.Null, fmt.Errorf("exec: aggregate %s outside GROUP BY box", msg)
		}, true

	case *qgm.Case:
		ok := true
		conds := make([]predKernel, len(t.Whens))
		thens := make([]scalarKernel, len(t.Whens))
		for i, w := range t.Whens {
			var cok, tok bool
			conds[i], cok = c.compilePred(w.Cond)
			thens[i], tok = c.compileScalar(w.Then)
			ok = ok && cok && tok
		}
		var els scalarKernel
		if t.Else != nil {
			var eok bool
			els, eok = c.compileScalar(t.Else)
			ok = ok && eok
		}
		return func(bd binding) (sqltypes.Value, error) {
			for i := range conds {
				tv, err := conds[i](bd)
				if err != nil {
					return sqltypes.Null, err
				}
				if tv == sqltypes.True {
					return thens[i](bd)
				}
			}
			if els != nil {
				return els(bd)
			}
			return sqltypes.Null, nil
		}, ok

	default:
		return c.fallbackScalar(e), false
	}
}

// compilePred lowers e to a predKernel; the bool is as in compileScalar.
func (c *exprCtx) compilePred(e qgm.Expr) (predKernel, bool) {
	switch t := e.(type) {
	case *qgm.Bin:
		switch t.Op {
		case "AND":
			l, lok := c.compilePred(t.L)
			r, rok := c.compilePred(t.R)
			return func(bd binding) (sqltypes.Tri, error) {
				lv, err := l(bd)
				if err != nil {
					return sqltypes.Unknown, err
				}
				if lv == sqltypes.False {
					return sqltypes.False, nil
				}
				rv, err := r(bd)
				if err != nil {
					return sqltypes.Unknown, err
				}
				return lv.And(rv), nil
			}, lok && rok
		case "OR":
			l, lok := c.compilePred(t.L)
			r, rok := c.compilePred(t.R)
			return func(bd binding) (sqltypes.Tri, error) {
				lv, err := l(bd)
				if err != nil {
					return sqltypes.Unknown, err
				}
				if lv == sqltypes.True {
					return sqltypes.True, nil
				}
				rv, err := r(bd)
				if err != nil {
					return sqltypes.Unknown, err
				}
				return lv.Or(rv), nil
			}, lok && rok
		case "=", "<>", "<", "<=", ">", ">=":
			l, lok := c.compileScalar(t.L)
			r, rok := c.compileScalar(t.R)
			var cmp func(int) bool
			switch t.Op {
			case "=":
				cmp = func(c int) bool { return c == 0 }
			case "<>":
				cmp = func(c int) bool { return c != 0 }
			case "<":
				cmp = func(c int) bool { return c < 0 }
			case "<=":
				cmp = func(c int) bool { return c <= 0 }
			case ">":
				cmp = func(c int) bool { return c > 0 }
			case ">=":
				cmp = func(c int) bool { return c >= 0 }
			}
			return func(bd binding) (sqltypes.Tri, error) {
				lv, err := l(bd)
				if err != nil {
					return sqltypes.Unknown, err
				}
				rv, err := r(bd)
				if err != nil {
					return sqltypes.Unknown, err
				}
				if lv.IsNull() || rv.IsNull() {
					return sqltypes.Unknown, nil
				}
				cv, err := sqltypes.Compare(lv, rv)
				if err != nil {
					return sqltypes.Unknown, err
				}
				return sqltypes.TriOf(cmp(cv)), nil
			}, lok && rok
		}
		// Arithmetic in predicate position: evaluate and interpret.
		sk, ok := c.compileScalar(t)
		return predFromScalar(sk), ok

	case *qgm.Not:
		inner, ok := c.compilePred(t.E)
		return func(bd binding) (sqltypes.Tri, error) {
			tv, err := inner(bd)
			if err != nil {
				return sqltypes.Unknown, err
			}
			return tv.Not(), nil
		}, ok

	case *qgm.IsNull:
		sk, ok := c.compileScalar(t.E)
		neg := t.Neg
		return func(bd binding) (sqltypes.Tri, error) {
			v, err := sk(bd)
			if err != nil {
				return sqltypes.Unknown, err
			}
			return sqltypes.TriOf(v.IsNull() != neg), nil
		}, ok

	case *qgm.Like:
		vk, vok := c.compileScalar(t.E)
		pk, pok := c.compileScalar(t.Pattern)
		neg := t.Neg
		return func(bd binding) (sqltypes.Tri, error) {
			v, err := vk(bd)
			if err != nil {
				return sqltypes.Unknown, err
			}
			p, err := pk(bd)
			if err != nil {
				return sqltypes.Unknown, err
			}
			if v.IsNull() || p.IsNull() {
				return sqltypes.Unknown, nil
			}
			if v.Kind() != sqltypes.KindString || p.Kind() != sqltypes.KindString {
				return sqltypes.Unknown, fmt.Errorf("exec: LIKE on %s and %s", v.Kind(), p.Kind())
			}
			match := sqltypes.LikeMatch(v.Str(), p.Str())
			return sqltypes.TriOf(match != neg), nil
		}, vok && pok

	default:
		sk, ok := c.compileScalar(e)
		return predFromScalar(sk), ok
	}
}

// predFromScalar adapts a scalar kernel used in predicate position
// (TriFromValue semantics, mirroring evalPred's default arm).
func predFromScalar(sk scalarKernel) predKernel {
	return func(bd binding) (sqltypes.Tri, error) {
		v, err := sk(bd)
		if err != nil {
			return sqltypes.Unknown, err
		}
		return sqltypes.TriFromValue(v), nil
	}
}

// fallbackScalar hands a subtree back to the interpreter unchanged.
func (c *exprCtx) fallbackScalar(e qgm.Expr) scalarKernel {
	return func(bd binding) (sqltypes.Value, error) { return c.evalScalar(e, bd) }
}

// Observability counters for the kernel compiler: exprs fully lowered vs
// exprs containing at least one interpreter-fallback subtree.
const (
	CtrExprCompiled = "exec.compile.compiled"
	CtrExprFallback = "exec.compile.fallback"
)

// scalarKernel returns the kernel for one expression, honoring
// Config.Interpret (force the tree-walking interpreter) and counting
// compile outcomes.
func (ev *evaluator) scalarKernel(ectx *exprCtx, e qgm.Expr) scalarKernel {
	if ev.interp {
		return ectx.fallbackScalar(e)
	}
	k, ok := ectx.compileScalar(e)
	ev.countCompile(ok)
	return k
}

// predKernelsFor compiles the predicates selected by idx (indices into
// preds), aligned with idx.
func (ev *evaluator) predKernelsFor(ectx *exprCtx, preds []qgm.Expr, idx []int) []predKernel {
	out := make([]predKernel, len(idx))
	for i, pi := range idx {
		p := preds[pi]
		if ev.interp {
			out[i] = func(bd binding) (sqltypes.Tri, error) { return ectx.evalPred(p, bd) }
			continue
		}
		k, ok := ectx.compilePred(p)
		ev.countCompile(ok)
		out[i] = k
	}
	return out
}

func (ev *evaluator) countCompile(ok bool) {
	if ok {
		ev.obsv.Add(CtrExprCompiled, 1)
	} else {
		ev.obsv.Add(CtrExprFallback, 1)
	}
}
