package exec

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateNilAndUnlimitedAdmitEverything(t *testing.T) {
	for _, g := range []*Gate{nil, {}, NewGate(0, 10)} {
		release, err := g.Enter(context.Background())
		if err != nil {
			t.Fatalf("unlimited gate rejected: %v", err)
		}
		release()
	}
}

func TestGateRejectsPastQueueDepth(t *testing.T) {
	g := NewGate(1, 1)
	ctx := context.Background()

	rel1, err := g.Enter(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Second enter queues; run it in a goroutine.
	entered := make(chan func(), 1)
	go func() {
		rel, err := g.Enter(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		entered <- rel
	}()
	// Wait until the queued request holds its token.
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Third enter: slot busy, queue full → typed rejection.
	if _, err := g.Enter(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	rel1()
	rel2 := <-entered
	rel2()
	if g.Running() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: running=%d waiting=%d", g.Running(), g.Waiting())
	}
}

func TestGateEnterHonorsContext(t *testing.T) {
	g := NewGate(1, 4)
	rel, err := g.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for g.Waiting() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	if _, err := g.Enter(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate(2, 0)
	rel, err := g.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not free a second slot
	if got := g.Running(); got != 0 {
		t.Fatalf("running = %d after release", got)
	}
	// Both slots must still be usable exactly twice.
	r1, err1 := g.Enter(context.Background())
	r2, err2 := g.Enter(context.Background())
	if err1 != nil || err2 != nil {
		t.Fatalf("enter after release: %v %v", err1, err2)
	}
	if _, err := g.Enter(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third enter on 2-slot no-queue gate: want ErrOverloaded, got %v", err)
	}
	r1()
	r2()
}

// TestGateConcurrentNeverExceedsCap hammers the gate from many goroutines and
// asserts the running gauge never exceeds the slot cap (race detector covers
// the memory discipline).
func TestGateConcurrentNeverExceedsCap(t *testing.T) {
	const cap, workers = 4, 64
	g := NewGate(cap, workers)
	var wg sync.WaitGroup
	var maxSeen atomic64Max
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Enter(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			maxSeen.observe(g.Running())
			time.Sleep(time.Millisecond)
			rel()
		}()
	}
	wg.Wait()
	if got := maxSeen.load(); got > cap {
		t.Fatalf("observed %d running, cap %d", got, cap)
	}
}

type atomic64Max struct {
	mu sync.Mutex
	v  int64
}

func (m *atomic64Max) observe(v int64) {
	m.mu.Lock()
	if v > m.v {
		m.v = v
	}
	m.mu.Unlock()
}

func (m *atomic64Max) load() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.v
}
