package exec

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Limits bounds one engine run. The zero value means unlimited — Run uses it.
type Limits struct {
	// MaxRows caps the rows the run may materialize, summed over every
	// operator (scans, join outputs, group outputs). It bounds memory and
	// work for runaway plans (e.g. an accidental cross join), not just the
	// final result size.
	MaxRows int
	// Timeout is the wall-clock budget for the run; it is applied on top of
	// whatever deadline the caller's context already carries.
	Timeout time.Duration
}

// ErrBudgetExceeded is returned (wrapped) when a run materializes more than
// Limits.MaxRows rows.
var ErrBudgetExceeded = errors.New("exec: row budget exceeded")

// ErrCanceled is returned (wrapped) when the run's context is canceled or
// its deadline — including Limits.Timeout — expires.
var ErrCanceled = errors.New("exec: canceled")

// pollEvery gates context polling in hot loops: the evaluator checks
// ctx.Done() once per this many checkpoint calls (plus once per box).
const pollEvery = 256

// checkpoint charges n materialized rows against the budget and periodically
// polls the context. Every loop that produces or consumes rows calls it.
func (ev *evaluator) checkpoint(n int) error {
	ev.rowsUsed += n
	if ev.maxRows > 0 && ev.rowsUsed > ev.maxRows {
		return fmt.Errorf("%w: materialized %d rows, limit %d", ErrBudgetExceeded, ev.rowsUsed, ev.maxRows)
	}
	ev.polls++
	if ev.polls%pollEvery == 0 {
		return ev.pollCtx()
	}
	return nil
}

// pollCtx reports a typed cancellation error when the run's context is done.
func (ev *evaluator) pollCtx() error {
	if ev.ctx == nil {
		return nil
	}
	select {
	case <-ev.ctx.Done():
		return fmt.Errorf("%w: %v", ErrCanceled, context.Cause(ev.ctx))
	default:
		return nil
	}
}
