package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Config collects every knob of one engine run — resource bounds, wall-clock
// budget, and parallelism — in a single documented struct. The zero value
// means unlimited and serial-or-parallel at the engine's discretion; Run uses
// it.
type Config struct {
	// MaxRows caps the rows the run may materialize, summed over every
	// operator (scans, join outputs, group outputs). It bounds memory and
	// work for runaway plans (e.g. an accidental cross join), not just the
	// final result size. Under parallel execution the cap is charged through
	// one atomic counter shared by all workers, so it holds run-wide (workers
	// batch their charges, so a run may overshoot by at most a few batches
	// before tripping).
	MaxRows int
	// Timeout is the wall-clock budget for the run; it is applied on top of
	// whatever deadline the caller's context already carries.
	Timeout time.Duration
	// Parallelism caps the worker count of parallel operators (partitioned
	// aggregation, scan+filter partitioning). 0 means GOMAXPROCS; 1 forces
	// the serial path, which is the reference for result-parity testing.
	Parallelism int
	// Interpret disables the compiled expression kernels and forces the
	// tree-walking interpreter for every per-row expression. The interpreter
	// is the reference path for the interpreted/compiled parity tests and the
	// baseline leg of the kernel benchmarks; results are identical either
	// way.
	Interpret bool
	// Vectorize selects the executor's evaluation strategy for plans the
	// vectorized path supports (single-table scans and the GROUP BY shapes
	// over them; see DESIGN.md §13). The zero value (VecAuto) vectorizes
	// where supported, falling back per box — and per expression, via lifted
	// row kernels — everywhere else; VecOff pins the row-at-a-time reference
	// path. Interpret implies the row path regardless.
	Vectorize VecMode
}

// VecMode is the Config.Vectorize knob.
type VecMode uint8

const (
	// VecAuto (the zero value) enables the vectorized path where supported.
	VecAuto VecMode = iota
	// VecOff forces the row-at-a-time path, the reference for parity tests
	// and the row-vs-vector benchmark legs.
	VecOff
)

// ErrBudgetExceeded is returned (wrapped) when a run materializes more than
// Config.MaxRows rows.
var ErrBudgetExceeded = errors.New("exec: row budget exceeded")

// ErrCanceled is returned (wrapped) when the run's context is canceled or
// its deadline — including Config.Timeout — expires.
var ErrCanceled = errors.New("exec: canceled")

// pollEvery gates context polling in hot loops: a charger checks ctx.Done()
// at least once per this many checkpoint calls (plus once per box and once
// per parallel partition).
const pollEvery = 256

// chargeBatch is how many rows a charger accumulates locally before pushing
// them to the shared atomic counter. It bounds both atomic contention across
// workers and how far a run can overshoot MaxRows before tripping.
const chargeBatch = 64

// runBudget is the shared, concurrency-safe resource budget of one run:
// every worker of every parallel operator charges the same atomic counter,
// so Config.MaxRows bounds the run as a whole, not per goroutine.
type runBudget struct {
	ctx     context.Context
	maxRows int64 // 0 = unlimited
	used    atomic.Int64
}

// charge adds n rows to the shared counter, returning a wrapped
// ErrBudgetExceeded past the cap, and polls the context.
func (b *runBudget) charge(n int64) error {
	if n > 0 {
		used := b.used.Add(n)
		if b.maxRows > 0 && used > b.maxRows {
			return fmt.Errorf("%w: materialized %d rows, limit %d", ErrBudgetExceeded, used, b.maxRows)
		}
	}
	return b.poll()
}

// poll reports a typed cancellation error when the run's context is done.
func (b *runBudget) poll() error {
	if b.ctx == nil {
		return nil
	}
	select {
	case <-b.ctx.Done():
		return fmt.Errorf("%w: %v", ErrCanceled, context.Cause(b.ctx))
	default:
		return nil
	}
}

// charger is one goroutine's stake in the shared budget. It accumulates row
// charges locally and flushes them to the atomic counter in batches; each
// flush also polls the context. Every loop that produces or consumes rows
// calls checkpoint on its goroutine's charger.
type charger struct {
	b     *runBudget
	local int64
	calls int64
}

func (c *charger) checkpoint(n int) error {
	c.local += int64(n)
	c.calls++
	if c.local >= chargeBatch || c.calls%pollEvery == 0 {
		return c.flush()
	}
	return nil
}

// flush pushes the locally accumulated charge to the shared budget and polls
// the context. Callers flush at operator boundaries and when a worker
// finishes its partition so accounting never lags a completed operator.
func (c *charger) flush() error {
	n := c.local
	c.local = 0
	return c.b.charge(n)
}
