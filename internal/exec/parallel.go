package exec

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelMinRows is the input size below which parallel operators stay
// serial: goroutine spawn and partial-merge overhead dominates tiny inputs.
const parallelMinRows = 2048

// workersFor returns the worker count for an input of n rows, honoring the
// run's Parallelism limit and keeping partitions large enough to amortize
// fan-out overhead.
func (ev *evaluator) workersFor(n int) int {
	w := ev.par
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n < parallelMinRows {
		return 1
	}
	if maxParts := n / (parallelMinRows / 2); maxParts < w {
		w = maxParts
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelChunks partitions [0, n) into `workers` contiguous, in-order chunks
// and runs fn for each on its own goroutine. Each worker gets a private
// charger against the shared run budget (flushed when the worker finishes its
// partition, which also polls the context), so Config.MaxRows and
// cancellation hold run-wide. A panic inside a worker is recovered and
// surfaced as a single error; when several workers fail, the lowest-numbered
// partition's error wins, deterministically.
//
// With workers <= 1 fn runs inline on the caller's goroutine — the serial
// path, reachable via Config{Parallelism: 1}.
func (ev *evaluator) parallelChunks(n, workers int, fn func(w, lo, hi int, chg *charger) error) error {
	if workers <= 1 {
		chg := &charger{b: ev.bud}
		if err := fn(0, 0, n, chg); err != nil {
			return err
		}
		return chg.flush()
	}
	ev.obsv.Add(CtrParallelOps, 1)
	ev.obsv.Add(CtrParallelWorkers, int64(workers))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("exec: parallel worker %d panicked: %v", w, r)
				}
			}()
			chg := &charger{b: ev.bud}
			if err := fn(w, lo, hi, chg); err != nil {
				errs[w] = err
				return
			}
			errs[w] = chg.flush()
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
