package exec

import (
	"fmt"

	"repro/internal/qgm"
	"repro/internal/sqltypes"
)

// exprCtx evaluates scalar expressions and predicates against a binding.
// Scalar-subquery quantifiers have been pre-evaluated into scalars; ForEach
// quantifiers resolve to a fixed join slot assigned when they entered the
// join, so a column reference is two slice indexes rather than a scan.
type exprCtx struct {
	scalars map[int]sqltypes.Value
	slots   []int // quantifier ID -> binding slot; -1 / out of range = none
}

// setSlot records that quantifier qid occupies the given binding slot.
func (c *exprCtx) setSlot(qid, slot int) {
	for len(c.slots) <= qid {
		c.slots = append(c.slots, -1)
	}
	c.slots[qid] = slot
}

func (c *exprCtx) evalScalar(e qgm.Expr, bd binding) (sqltypes.Value, error) {
	switch t := e.(type) {
	case *qgm.ColRef:
		if t.Q == nil {
			return sqltypes.Null, fmt.Errorf("exec: unbound column reference")
		}
		qid := t.Q.ID
		if len(c.scalars) > 0 {
			if v, ok := c.scalars[qid]; ok {
				return v, nil
			}
		}
		slot := -1
		if qid < len(c.slots) {
			slot = c.slots[qid]
		}
		if slot < 0 || slot >= len(bd) || bd[slot] == nil {
			return sqltypes.Null, fmt.Errorf("exec: quantifier q%d not in scope", qid)
		}
		row := bd[slot]
		if t.Col >= len(row) {
			return sqltypes.Null, fmt.Errorf("exec: column %d out of range (row width %d)", t.Col, len(row))
		}
		return row[t.Col], nil

	case *qgm.Const:
		return t.Val, nil

	case *qgm.Call:
		arg, err := c.evalScalar(t.Args[0], bd)
		if err != nil {
			return sqltypes.Null, err
		}
		if arg.IsNull() {
			return sqltypes.Null, nil
		}
		switch t.Name {
		case "year":
			return sqltypes.NewInt(arg.DateYear()), nil
		case "month":
			return sqltypes.NewInt(arg.DateMonth()), nil
		case "day":
			return sqltypes.NewInt(arg.DateDay()), nil
		default:
			return sqltypes.Null, fmt.Errorf("exec: unknown function %q", t.Name)
		}

	case *qgm.Bin:
		switch t.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			tv, err := c.evalPred(t, bd)
			if err != nil {
				return sqltypes.Null, err
			}
			return tv.Value(), nil
		}
		l, err := c.evalScalar(t.L, bd)
		if err != nil {
			return sqltypes.Null, err
		}
		r, err := c.evalScalar(t.R, bd)
		if err != nil {
			return sqltypes.Null, err
		}
		switch t.Op {
		case "||":
			return sqltypes.Concat(l, r)
		case "+":
			return sqltypes.Add(l, r)
		case "-":
			return sqltypes.Sub(l, r)
		case "*":
			return sqltypes.Mul(l, r)
		case "/":
			return sqltypes.Div(l, r)
		case "%":
			return sqltypes.Mod(l, r)
		default:
			return sqltypes.Null, fmt.Errorf("exec: unknown operator %q", t.Op)
		}

	case *qgm.Not:
		tv, err := c.evalPred(t, bd)
		if err != nil {
			return sqltypes.Null, err
		}
		return tv.Value(), nil

	case *qgm.IsNull:
		tv, err := c.evalPred(t, bd)
		if err != nil {
			return sqltypes.Null, err
		}
		return tv.Value(), nil

	case *qgm.Like:
		tv, err := c.evalPred(t, bd)
		if err != nil {
			return sqltypes.Null, err
		}
		return tv.Value(), nil

	case *qgm.Agg:
		return sqltypes.Null, fmt.Errorf("exec: aggregate %s outside GROUP BY box", t.String())

	case *qgm.Case:
		for _, w := range t.Whens {
			tv, err := c.evalPred(w.Cond, bd)
			if err != nil {
				return sqltypes.Null, err
			}
			if tv == sqltypes.True {
				return c.evalScalar(w.Then, bd)
			}
		}
		if t.Else != nil {
			return c.evalScalar(t.Else, bd)
		}
		return sqltypes.Null, nil

	default:
		return sqltypes.Null, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func (c *exprCtx) evalPred(e qgm.Expr, bd binding) (sqltypes.Tri, error) {
	switch t := e.(type) {
	case *qgm.Bin:
		switch t.Op {
		case "AND":
			l, err := c.evalPred(t.L, bd)
			if err != nil {
				return sqltypes.Unknown, err
			}
			if l == sqltypes.False {
				return sqltypes.False, nil
			}
			r, err := c.evalPred(t.R, bd)
			if err != nil {
				return sqltypes.Unknown, err
			}
			return l.And(r), nil
		case "OR":
			l, err := c.evalPred(t.L, bd)
			if err != nil {
				return sqltypes.Unknown, err
			}
			if l == sqltypes.True {
				return sqltypes.True, nil
			}
			r, err := c.evalPred(t.R, bd)
			if err != nil {
				return sqltypes.Unknown, err
			}
			return l.Or(r), nil
		case "=", "<>", "<", "<=", ">", ">=":
			l, err := c.evalScalar(t.L, bd)
			if err != nil {
				return sqltypes.Unknown, err
			}
			r, err := c.evalScalar(t.R, bd)
			if err != nil {
				return sqltypes.Unknown, err
			}
			if l.IsNull() || r.IsNull() {
				return sqltypes.Unknown, nil
			}
			cv, err := sqltypes.Compare(l, r)
			if err != nil {
				return sqltypes.Unknown, err
			}
			switch t.Op {
			case "=":
				return sqltypes.TriOf(cv == 0), nil
			case "<>":
				return sqltypes.TriOf(cv != 0), nil
			case "<":
				return sqltypes.TriOf(cv < 0), nil
			case "<=":
				return sqltypes.TriOf(cv <= 0), nil
			case ">":
				return sqltypes.TriOf(cv > 0), nil
			case ">=":
				return sqltypes.TriOf(cv >= 0), nil
			}
		}
		// Arithmetic in predicate position: evaluate and interpret.
		v, err := c.evalScalar(t, bd)
		if err != nil {
			return sqltypes.Unknown, err
		}
		return sqltypes.TriFromValue(v), nil

	case *qgm.Not:
		inner, err := c.evalPred(t.E, bd)
		if err != nil {
			return sqltypes.Unknown, err
		}
		return inner.Not(), nil

	case *qgm.IsNull:
		v, err := c.evalScalar(t.E, bd)
		if err != nil {
			return sqltypes.Unknown, err
		}
		isNull := v.IsNull()
		if t.Neg {
			return sqltypes.TriOf(!isNull), nil
		}
		return sqltypes.TriOf(isNull), nil

	case *qgm.Like:
		v, err := c.evalScalar(t.E, bd)
		if err != nil {
			return sqltypes.Unknown, err
		}
		p, err := c.evalScalar(t.Pattern, bd)
		if err != nil {
			return sqltypes.Unknown, err
		}
		if v.IsNull() || p.IsNull() {
			return sqltypes.Unknown, nil
		}
		if v.Kind() != sqltypes.KindString || p.Kind() != sqltypes.KindString {
			return sqltypes.Unknown, fmt.Errorf("exec: LIKE on %s and %s", v.Kind(), p.Kind())
		}
		match := sqltypes.LikeMatch(v.Str(), p.Str())
		if t.Neg {
			return sqltypes.TriOf(!match), nil
		}
		return sqltypes.TriOf(match), nil

	default:
		v, err := c.evalScalar(e, bd)
		if err != nil {
			return sqltypes.Unknown, err
		}
		return sqltypes.TriFromValue(v), nil
	}
}
