package exec

import (
	"fmt"

	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// This file is the vectorized expression layer (Config.Vectorize): instead of
// evaluating expressions one binding at a time, supported box shapes scan the
// storage layer's column-major chunks directly and run per-chunk kernels —
// predicate filters narrow a selection vector, scalar kernels produce one
// sqltypes.Vec per expression per chunk. Semantics are pinned to the row
// engine: typed fast loops cover the common kinds and delegate every error
// (and every odd-kind element) to the same sqltypes functions the row kernels
// call, and any expression shape the vector compiler does not handle is
// "lifted" — the chunk's rows are materialized one at a time into a scratch
// binding and the existing compiled row kernel runs per element. A box whose
// plan shape is unsupported (joins, non-base children) declines entirely and
// the row path runs; declines and lifts are counted for observability.
//
// One intended divergence from the row path (documented in DESIGN.md §13):
// within a chunk, predicates run predicate-major rather than row-major, so
// when several rows would raise evaluation errors a different row's error may
// surface first, and a row eliminated by an earlier conjunct never evaluates
// later conjuncts (the row engine surfaces an error from a later conjunct
// even when an earlier one was Unknown). The parity suites pin that on
// error-free workloads results are identical, serially bit-for-bit.

// Observability counters for the vectorized path.
const (
	CtrVecBoxes    = "exec.vector.boxes"    // boxes evaluated vectorized
	CtrVecDeclined = "exec.vector.declined" // supported-kind boxes that fell back whole
	CtrVecLifted   = "exec.vector.lifted"   // expressions evaluated via lifted row kernels
)

// Result evaluation modes reported by Result.Mode / EXPLAIN.
const (
	ModeVectorized  = "vectorized"
	ModeCompiledRow = "compiled-row"
	ModeInterpreted = "interpreted"
)

// chunkState is one worker's cursor over one storage chunk: the chunk, the
// current selection (nil = all rows live), and scratch for lifted row
// kernels. Kernels evaluate over the selection in dense order.
type chunkState struct {
	chunk   *storage.Chunk
	sel     []int32 // live row indices, dense-ordered; nil = all of [0, chunk.N)
	scratch []int32 // reusable selection buffer (filters compact in place)
	row     []sqltypes.Value
	bd      binding
}

func newChunkState(ncols int) *chunkState {
	cs := &chunkState{
		scratch: make([]int32, 0, storage.ChunkRows),
		row:     make([]sqltypes.Value, ncols),
	}
	cs.bd = binding{cs.row}
	return cs
}

func (cs *chunkState) reset(c *storage.Chunk) {
	cs.chunk = c
	cs.sel = nil
}

// n returns the live (selected) row count.
func (cs *chunkState) n() int {
	if cs.sel != nil {
		return len(cs.sel)
	}
	return cs.chunk.N
}

// rowIdx maps a dense selection index to a chunk row index.
func (cs *chunkState) rowIdx(di int) int {
	if cs.sel != nil {
		return int(cs.sel[di])
	}
	return di
}

// materialize fills the scratch binding with chunk row ri, for lifted row
// kernels.
func (cs *chunkState) materialize(ri int) {
	cs.chunk.Row(ri, cs.row)
}

// vecKernel evaluates one scalar expression over a chunk's selection,
// producing a vector of length chunkState.n() aligned with the selection.
type vecKernel func(cs *chunkState) (*sqltypes.Vec, error)

// vecFilter applies one predicate conjunct, narrowing the selection to rows
// where it is True (SQL filter semantics: False and Unknown both drop).
type vecFilter func(cs *chunkState) error

// vecCompiler lowers expressions over a single base-table quantifier to
// vector kernels. ectx carries the scalar-subquery values and the base
// quantifier's slot 0, so lifted row kernels resolve references exactly as
// the row path would.
type vecCompiler struct {
	ev      *evaluator
	ectx    *exprCtx
	baseQID int
}

// lift hands an expression to the compiled row kernel, evaluated per selected
// row over a materialized scratch binding. Correct for every shape; counted.
func (vc *vecCompiler) lift(e qgm.Expr) vecKernel {
	rk := vc.ev.scalarKernel(vc.ectx, e)
	vc.ev.obsv.Add(CtrVecLifted, 1)
	return func(cs *chunkState) (*sqltypes.Vec, error) {
		n := cs.n()
		out := &sqltypes.Vec{}
		for di := 0; di < n; di++ {
			cs.materialize(cs.rowIdx(di))
			v, err := rk(cs.bd)
			if err != nil {
				return nil, err
			}
			out.AppendValue(v)
		}
		return out, nil
	}
}

// compileScalar lowers e to a vecKernel. Unsupported shapes lift; there is no
// failure mode — by construction every expression evaluates with row-path
// semantics.
func (vc *vecCompiler) compileScalar(e qgm.Expr) vecKernel {
	switch t := e.(type) {
	case *qgm.ColRef:
		if t.Q == nil {
			return vc.lift(e)
		}
		if v, ok := vc.ectx.scalars[t.Q.ID]; ok {
			return splatKernel(v)
		}
		if t.Q.ID != vc.baseQID {
			return vc.lift(e) // out-of-scope reference: row path's exact error
		}
		col := t.Col
		return func(cs *chunkState) (*sqltypes.Vec, error) {
			if col >= len(cs.chunk.Cols) {
				return nil, fmt.Errorf("exec: column %d out of range (row width %d)", col, len(cs.chunk.Cols))
			}
			src := &cs.chunk.Cols[col]
			if cs.sel == nil {
				return src, nil
			}
			return gatherVec(src, cs.sel), nil
		}

	case *qgm.Const:
		return splatKernel(t.Val)

	case *qgm.Call:
		return vc.compileCall(t)

	case *qgm.Bin:
		switch t.Op {
		case "||", "+", "-", "*", "/", "%":
			l := vc.compileScalar(t.L)
			r := vc.compileScalar(t.R)
			op := t.Op
			return func(cs *chunkState) (*sqltypes.Vec, error) {
				lv, err := l(cs)
				if err != nil {
					return nil, err
				}
				rv, err := r(cs)
				if err != nil {
					return nil, err
				}
				return vecBinArith(op, lv, rv)
			}
		}
		// Comparison/logical operators in scalar position are rare; lift.
		return vc.lift(e)

	default:
		// CASE, NOT, IS NULL, LIKE, Agg (error), unknown nodes: lift.
		return vc.lift(e)
	}
}

// splatKernel broadcasts a constant to the selection length.
func splatKernel(v sqltypes.Value) vecKernel {
	return func(cs *chunkState) (*sqltypes.Vec, error) {
		return splatVec(v, cs.n()), nil
	}
}

func splatVec(v sqltypes.Value, n int) *sqltypes.Vec {
	switch v.Kind() {
	case sqltypes.KindInt, sqltypes.KindBool, sqltypes.KindDate:
		ints := make([]int64, n)
		x := v.Int()
		for i := range ints {
			ints[i] = x
		}
		out := sqltypes.NewIntsVec(v.Kind(), ints, nil)
		return &out
	case sqltypes.KindFloat:
		fs := make([]float64, n)
		x := v.Float()
		for i := range fs {
			fs[i] = x
		}
		out := sqltypes.NewFloatsVec(fs, nil)
		return &out
	case sqltypes.KindString:
		ss := make([]string, n)
		x := v.Str()
		for i := range ss {
			ss[i] = x
		}
		out := sqltypes.NewStringsVec(ss, nil)
		return &out
	default:
		out := sqltypes.NewNullVec(n)
		return &out
	}
}

// gatherVec compacts src down to the selected rows.
func gatherVec(src *sqltypes.Vec, sel []int32) *sqltypes.Vec {
	n := len(sel)
	if src.Generic() {
		vals := make([]sqltypes.Value, n)
		for i, ri := range sel {
			vals[i] = src.Any[ri]
		}
		out := sqltypes.NewGenericVec(vals)
		return &out
	}
	var nulls sqltypes.Bitmap
	if src.HasNulls() {
		for i, ri := range sel {
			if src.IsNull(int(ri)) {
				nulls.Set(i)
			}
		}
	}
	switch src.Kind() {
	case sqltypes.KindInt, sqltypes.KindBool, sqltypes.KindDate:
		ints := make([]int64, n)
		for i, ri := range sel {
			ints[i] = src.Ints[ri]
		}
		out := sqltypes.NewIntsVec(src.Kind(), ints, nulls)
		return &out
	case sqltypes.KindFloat:
		fs := make([]float64, n)
		for i, ri := range sel {
			fs[i] = src.Floats[ri]
		}
		out := sqltypes.NewFloatsVec(fs, nulls)
		return &out
	case sqltypes.KindString:
		ss := make([]string, n)
		for i, ri := range sel {
			ss[i] = src.Strs[ri]
		}
		out := sqltypes.NewStringsVec(ss, nulls)
		return &out
	default: // untyped: every element NULL
		out := sqltypes.NewNullVec(n)
		return &out
	}
}

// intClass reports whether v is a typed vector backed by the Ints payload.
func intClass(v *sqltypes.Vec) bool {
	if v.Generic() {
		return false
	}
	switch v.Kind() {
	case sqltypes.KindInt, sqltypes.KindBool, sqltypes.KindDate:
		return true
	}
	return false
}

// compileCall lowers year/month/day over an Ints-payload argument to an
// integer loop (the date encoding is yyyymmdd); other kinds take the
// per-element route through the same Value accessors as the row kernel, so
// panics and NULL handling are identical. Unknown functions lift (the row
// kernel carries the exact error).
func (vc *vecCompiler) compileCall(t *qgm.Call) vecKernel {
	var f func(int64) int64
	switch t.Name {
	case "year":
		f = func(d int64) int64 { return d / 10000 }
	case "month":
		f = func(d int64) int64 { return (d / 100) % 100 }
	case "day":
		f = func(d int64) int64 { return d % 100 }
	default:
		return vc.lift(t)
	}
	name := t.Name
	arg := vc.compileScalar(t.Args[0])
	return func(cs *chunkState) (*sqltypes.Vec, error) {
		av, err := arg(cs)
		if err != nil {
			return nil, err
		}
		n := av.Len()
		if intClass(av) {
			ints := make([]int64, n)
			var nulls sqltypes.Bitmap
			if av.HasNulls() {
				for i := 0; i < n; i++ {
					if av.IsNull(i) {
						nulls.Set(i)
					} else {
						ints[i] = f(av.Ints[i])
					}
				}
			} else {
				for i, d := range av.Ints {
					ints[i] = f(d)
				}
			}
			out := sqltypes.NewIntsVec(sqltypes.KindInt, ints, nulls)
			return &out, nil
		}
		if !av.Generic() && av.Kind() == sqltypes.KindNull {
			return splatVec(sqltypes.Null, n), nil
		}
		// Odd argument kinds: reconstruct each Value and take the row path's
		// exact accessors (DateYear et al. panic on non-integer kinds, same as
		// the row kernel would).
		out := &sqltypes.Vec{}
		for i := 0; i < n; i++ {
			v := av.Value(i)
			if v.IsNull() {
				out.AppendNull()
				continue
			}
			switch name {
			case "year":
				out.AppendValue(sqltypes.NewInt(v.DateYear()))
			case "month":
				out.AppendValue(sqltypes.NewInt(v.DateMonth()))
			case "day":
				out.AppendValue(sqltypes.NewInt(v.DateDay()))
			}
		}
		return out, nil
	}
}

// binOpFn maps an arithmetic/concat operator to its sqltypes function — the
// per-element delegate for slow paths and exact errors.
func binOpFn(op string) func(a, b sqltypes.Value) (sqltypes.Value, error) {
	switch op {
	case "||":
		return sqltypes.Concat
	case "+":
		return sqltypes.Add
	case "-":
		return sqltypes.Sub
	case "*":
		return sqltypes.Mul
	case "/":
		return sqltypes.Div
	case "%":
		return sqltypes.Mod
	default:
		return func(a, b sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.Null, fmt.Errorf("exec: unknown operator %q", op)
		}
	}
}

func isInt(v *sqltypes.Vec) bool {
	return !v.Generic() && v.Kind() == sqltypes.KindInt
}

func isNumericVec(v *sqltypes.Vec) bool {
	return !v.Generic() && (v.Kind() == sqltypes.KindInt || v.Kind() == sqltypes.KindFloat)
}

func isAllNull(v *sqltypes.Vec) bool {
	return !v.Generic() && v.Kind() == sqltypes.KindNull
}

// floatAt coerces an element of a numeric vector to float64 (caller has
// checked non-NULL).
func floatAt(v *sqltypes.Vec, i int) float64 {
	if v.Kind() == sqltypes.KindFloat {
		return v.Floats[i]
	}
	return float64(v.Ints[i])
}

// vecBinArith evaluates a binary arithmetic/concat operator element-wise.
// Typed int/int, numeric/float and string/string pairs run dedicated loops;
// every other pairing — and every error case — delegates per element to the
// sqltypes function the row kernel uses, so results, NULL propagation and
// error messages match the row path exactly.
func vecBinArith(op string, a, b *sqltypes.Vec) (*sqltypes.Vec, error) {
	n := a.Len()
	fn := binOpFn(op)

	// NULL in, NULL out holds for every operator here: an all-NULL side makes
	// the whole result NULL.
	if isAllNull(a) || isAllNull(b) {
		return splatVec(sqltypes.Null, n), nil
	}

	anyNulls := a.HasNulls() || b.HasNulls() || a.Generic() || b.Generic()
	nullAt := func(i int) bool { return anyNulls && (a.IsNull(i) || b.IsNull(i)) }

	switch {
	case (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") && isInt(a) && isInt(b):
		ints := make([]int64, n)
		var nulls sqltypes.Bitmap
		for i := 0; i < n; i++ {
			if nullAt(i) {
				nulls.Set(i)
				continue
			}
			x, y := a.Ints[i], b.Ints[i]
			switch op {
			case "+":
				ints[i] = x + y
			case "-":
				ints[i] = x - y
			case "*":
				ints[i] = x * y
			case "/", "%":
				if y == 0 {
					_, err := fn(a.Value(i), b.Value(i))
					return nil, err
				}
				if op == "/" {
					ints[i] = x / y
				} else {
					ints[i] = x % y
				}
			}
		}
		out := sqltypes.NewIntsVec(sqltypes.KindInt, ints, nulls)
		return &out, nil

	case (op == "+" || op == "-" || op == "*" || op == "/") && isNumericVec(a) && isNumericVec(b):
		// At least one side is float (both-int handled above): float result.
		fs := make([]float64, n)
		var nulls sqltypes.Bitmap
		for i := 0; i < n; i++ {
			if nullAt(i) {
				nulls.Set(i)
				continue
			}
			x, y := floatAt(a, i), floatAt(b, i)
			switch op {
			case "+":
				fs[i] = x + y
			case "-":
				fs[i] = x - y
			case "*":
				fs[i] = x * y
			case "/":
				if y == 0 {
					_, err := fn(a.Value(i), b.Value(i))
					return nil, err
				}
				fs[i] = x / y
			}
		}
		out := sqltypes.NewFloatsVec(fs, nulls)
		return &out, nil

	case op == "||" && !a.Generic() && !b.Generic() &&
		a.Kind() == sqltypes.KindString && b.Kind() == sqltypes.KindString:
		ss := make([]string, n)
		var nulls sqltypes.Bitmap
		for i := 0; i < n; i++ {
			if nullAt(i) {
				nulls.Set(i)
				continue
			}
			ss[i] = a.Strs[i] + b.Strs[i]
		}
		out := sqltypes.NewStringsVec(ss, nulls)
		return &out, nil
	}

	// Mixed or odd kinds: per-element delegation.
	vals := make([]sqltypes.Value, n)
	for i := 0; i < n; i++ {
		v, err := fn(a.Value(i), b.Value(i))
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	out := sqltypes.NewGenericVec(vals)
	return &out, nil
}

// compileFilter lowers a predicate conjunct to a selection-narrowing filter.
// ANDs split into sequential filters (keep-only-True composes); comparisons
// get typed loops; everything else runs the compiled row predicate per
// selected row.
func (vc *vecCompiler) compileFilter(p qgm.Expr) vecFilter {
	if bin, ok := p.(*qgm.Bin); ok {
		switch bin.Op {
		case "AND":
			l := vc.compileFilter(bin.L)
			r := vc.compileFilter(bin.R)
			return func(cs *chunkState) error {
				if err := l(cs); err != nil {
					return err
				}
				if cs.n() == 0 {
					return nil
				}
				return r(cs)
			}
		case "=", "<>", "<", "<=", ">", ">=":
			return vc.compileCmpFilter(bin)
		}
	}
	// Lifted predicate: OR, NOT, IS NULL, LIKE, scalar-in-pred, etc.
	var pk predKernel
	if vc.ev.interp {
		ectx := vc.ectx
		pk = func(bd binding) (sqltypes.Tri, error) { return ectx.evalPred(p, bd) }
	} else {
		var ok bool
		pk, ok = vc.ectx.compilePred(p)
		vc.ev.countCompile(ok)
	}
	vc.ev.obsv.Add(CtrVecLifted, 1)
	return func(cs *chunkState) error {
		n := cs.n()
		out := cs.scratch[:0]
		for di := 0; di < n; di++ {
			ri := cs.rowIdx(di)
			cs.materialize(ri)
			tv, err := pk(cs.bd)
			if err != nil {
				return err
			}
			if tv == sqltypes.True {
				out = append(out, int32(ri))
			}
		}
		cs.sel = out
		return nil
	}
}

// compileCmpFilter lowers one comparison conjunct. The operand kernels run
// over the current selection; the compare loop keeps rows where the
// comparison is True (NULL operands are Unknown and drop). Kind dispatch
// happens once per chunk — mixed pairings Compare handles (date/int, numeric
// coercion) and pairings it rejects both delegate per element for the exact
// result or error.
func (vc *vecCompiler) compileCmpFilter(bin *qgm.Bin) vecFilter {
	l := vc.compileScalar(bin.L)
	r := vc.compileScalar(bin.R)
	var keep func(c int) bool
	switch bin.Op {
	case "=":
		keep = func(c int) bool { return c == 0 }
	case "<>":
		keep = func(c int) bool { return c != 0 }
	case "<":
		keep = func(c int) bool { return c < 0 }
	case "<=":
		keep = func(c int) bool { return c <= 0 }
	case ">":
		keep = func(c int) bool { return c > 0 }
	case ">=":
		keep = func(c int) bool { return c >= 0 }
	}
	return func(cs *chunkState) error {
		lv, err := l(cs)
		if err != nil {
			return err
		}
		rv, err := r(cs)
		if err != nil {
			return err
		}
		n := cs.n()
		out := cs.scratch[:0]

		anyNulls := lv.HasNulls() || rv.HasNulls() || lv.Generic() || rv.Generic()
		nullAt := func(i int) bool { return anyNulls && (lv.IsNull(i) || rv.IsNull(i)) }

		switch {
		case isAllNull(lv) || isAllNull(rv):
			// Comparison with NULL is Unknown everywhere: empty selection.

		case isInt(lv) && isInt(rv),
			intClass(lv) && intClass(rv) && lv.Kind() == rv.Kind(),
			intClass(lv) && intClass(rv) &&
				(lv.Kind() == sqltypes.KindDate || lv.Kind() == sqltypes.KindInt) &&
				(rv.Kind() == sqltypes.KindDate || rv.Kind() == sqltypes.KindInt):
			// Int/int, same-kind int-class (date/date, bool/bool), and the
			// date/int pairings Compare allows: payload compare.
			for di := 0; di < n; di++ {
				if nullAt(di) {
					continue
				}
				if keep(cmpInt64(lv.Ints[di], rv.Ints[di])) {
					out = append(out, int32(cs.rowIdx(di)))
				}
			}

		case isNumericVec(lv) && isNumericVec(rv):
			for di := 0; di < n; di++ {
				if nullAt(di) {
					continue
				}
				if keep(cmpF64(floatAt(lv, di), floatAt(rv, di))) {
					out = append(out, int32(cs.rowIdx(di)))
				}
			}

		case !lv.Generic() && !rv.Generic() &&
			lv.Kind() == sqltypes.KindString && rv.Kind() == sqltypes.KindString:
			for di := 0; di < n; di++ {
				if nullAt(di) {
					continue
				}
				x, y := lv.Strs[di], rv.Strs[di]
				c := 0
				if x < y {
					c = -1
				} else if x > y {
					c = 1
				}
				if keep(c) {
					out = append(out, int32(cs.rowIdx(di)))
				}
			}

		default:
			// Mixed/odd kinds: Compare per element for exact semantics.
			for di := 0; di < n; di++ {
				if nullAt(di) {
					continue
				}
				c, err := sqltypes.Compare(lv.Value(di), rv.Value(di))
				if err != nil {
					return err
				}
				if keep(c) {
					out = append(out, int32(cs.rowIdx(di)))
				}
			}
		}
		cs.sel = out
		return nil
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// exprOverQuant reports whether e references only quantifier qid (scalar
// subqueries count as constants) and contains no aggregate — the shape the
// vector compiler evaluates with exact row-path error behavior. Anything else
// declines the box so the row path raises its own errors.
func exprOverQuant(e qgm.Expr, qid int, scalars map[int]sqltypes.Value) bool {
	qs := sideQuants(e, scalars)
	if qs == nil {
		return false
	}
	for q := range qs {
		if q != qid {
			return false
		}
	}
	return true
}

// scanChunks scans a base table in chunk form with the same budget charges,
// counters and fault-site behavior as the row path's base-box scan.
func (ev *evaluator) scanChunks(name string) ([]*storage.Chunk, int, error) {
	chunks, n, err := ev.store.ScanChunks(name)
	if err != nil {
		return nil, 0, err
	}
	ev.obsv.Add(CtrRowsScanned, int64(n))
	if err := ev.checkpoint(n); err != nil {
		return nil, 0, err
	}
	if err := ev.chg.flush(); err != nil {
		return nil, 0, err
	}
	return chunks, n, nil
}

// evalSelectVec evaluates a SELECT box vectorized when its shape is a single
// ForEach quantifier over a base table (plus any scalar subqueries): per
// chunk, predicate filters narrow the selection and output kernels produce
// column vectors, materialized to rows in selection order. Chunks partition
// across workers in order, so output order matches the serial row path.
// handled=false means the shape is unsupported and the caller must run the
// row path.
func (ev *evaluator) evalSelectVec(b *qgm.Box) ([][]sqltypes.Value, bool, error) {
	var fe *qgm.Quantifier
	for _, q := range b.Quantifiers {
		if q.Kind == qgm.ForEach {
			if fe != nil {
				ev.obsv.Add(CtrVecDeclined, 1)
				return nil, false, nil // joins: row path
			}
			fe = q
		}
	}
	if fe == nil || fe.Box.Kind != qgm.BaseTableBox {
		ev.obsv.Add(CtrVecDeclined, 1)
		return nil, false, nil
	}

	// Scalar subqueries evaluate once, exactly as the row path does.
	scalars := map[int]sqltypes.Value{}
	for _, q := range b.Quantifiers {
		if q.Kind != qgm.Scalar {
			continue
		}
		rows, err := ev.evalBox(q.Box)
		if err != nil {
			return nil, true, err
		}
		switch len(rows) {
		case 0:
			scalars[q.ID] = sqltypes.Null
		case 1:
			scalars[q.ID] = rows[0][0]
		default:
			return nil, true, fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
		}
	}

	// Predicates or outputs that reference anything beyond the base
	// quantifier (or contain aggregates) carry row-path-specific errors:
	// decline rather than approximate them.
	for _, p := range b.Preds {
		if !exprOverQuant(p, fe.ID, scalars) {
			ev.obsv.Add(CtrVecDeclined, 1)
			return nil, false, nil
		}
	}

	ectx := &exprCtx{scalars: scalars}
	ectx.setSlot(fe.ID, 0)
	vc := &vecCompiler{ev: ev, ectx: ectx, baseQID: fe.ID}

	filters := make([]vecFilter, len(b.Preds))
	for i, p := range b.Preds {
		filters[i] = vc.compileFilter(p)
	}
	colKs := make([]vecKernel, len(b.Cols))
	for ci, c := range b.Cols {
		colKs[ci] = vc.compileScalar(c.Expr)
	}

	chunks, total, err := ev.scanChunks(fe.Box.Table.Name)
	if err != nil {
		return nil, true, err
	}
	ncols := len(fe.Box.Cols)

	workers := ev.workersFor(total)
	parts := make([][][]sqltypes.Value, max(workers, 1))
	err = ev.parallelChunks(len(chunks), workers, func(w, lo, hi int, chg *charger) error {
		cs := newChunkState(ncols)
		var out [][]sqltypes.Value
		vecs := make([]*sqltypes.Vec, len(colKs))
		for ci := lo; ci < hi; ci++ {
			cs.reset(chunks[ci])
			for _, f := range filters {
				if err := f(cs); err != nil {
					return err
				}
				if cs.n() == 0 {
					break
				}
			}
			n := cs.n()
			if n == 0 {
				continue
			}
			for i, k := range colKs {
				v, err := k(cs)
				if err != nil {
					return err
				}
				vecs[i] = v
			}
			for di := 0; di < n; di++ {
				if err := chg.checkpoint(1); err != nil {
					return err
				}
				row := make([]sqltypes.Value, len(vecs))
				for i, v := range vecs {
					row[i] = v.Value(di)
				}
				out = append(out, row)
			}
		}
		parts[w] = out
		return nil
	})
	if err != nil {
		return nil, true, err
	}

	var out [][]sqltypes.Value
	if workers == 1 {
		out = parts[0]
	} else {
		n := 0
		for _, p := range parts {
			n += len(p)
		}
		out = make([][]sqltypes.Value, 0, n)
		for _, p := range parts {
			out = append(out, p...)
		}
	}
	if b.Distinct {
		out = dedupeRows(out)
	}
	ev.obsv.Add(CtrVecBoxes, 1)
	ev.usedVector = true
	return out, true, nil
}
