package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrOverloaded is returned (wrapped) by Gate.Enter when every execution slot
// is busy and the wait queue is full. It is the admission-control companion of
// ErrBudgetExceeded/ErrCanceled: a typed, retriable rejection the serving
// layer maps to a wire code instead of queueing unboundedly.
var ErrOverloaded = errors.New("exec: overloaded, admission queue full")

// Gate is the admission controller for a shared engine: at most maxConcurrent
// requests run at once, at most queueDepth more wait for a slot, and anything
// beyond that is rejected immediately with ErrOverloaded. A Gate bounds both
// the execution parallelism and the latency hidden in the queue — with the
// queue full, callers learn about overload now rather than after a timeout.
//
// The zero Gate (and a nil *Gate) admits everything; construct with NewGate
// to enforce limits. All methods are safe for concurrent use.
type Gate struct {
	slots chan struct{} // execution slots; nil = unlimited
	queue chan struct{} // wait-queue tokens; nil = no waiting allowed
	// waiting and running are point-in-time gauges for observability.
	waiting atomic.Int64
	running atomic.Int64
}

// NewGate builds a gate admitting maxConcurrent concurrent requests with a
// wait queue of queueDepth. maxConcurrent <= 0 means unlimited (queueDepth is
// then irrelevant); queueDepth <= 0 means a full gate rejects instantly.
func NewGate(maxConcurrent, queueDepth int) *Gate {
	g := &Gate{}
	if maxConcurrent > 0 {
		g.slots = make(chan struct{}, maxConcurrent)
		if queueDepth > 0 {
			g.queue = make(chan struct{}, queueDepth)
		}
	}
	return g
}

// Enter requests admission. It returns a release function that must be called
// exactly once when the admitted work finishes, or an error: a wrapped
// ErrOverloaded when the gate and its queue are full, a wrapped ErrCanceled
// when ctx is done before a slot frees up. On error the caller owns nothing.
func (g *Gate) Enter(ctx context.Context) (release func(), err error) {
	if g == nil || g.slots == nil {
		return func() {}, nil
	}
	// Fast path: a free slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		return g.admitted(), nil
	default:
	}
	// Slow path: take a queue token (or reject), then wait for a slot.
	if g.queue == nil {
		return nil, fmt.Errorf("%w: %d running", ErrOverloaded, cap(g.slots))
	}
	select {
	case g.queue <- struct{}{}:
	default:
		return nil, fmt.Errorf("%w: %d running, %d queued", ErrOverloaded, cap(g.slots), cap(g.queue))
	}
	g.waiting.Add(1)
	defer func() {
		g.waiting.Add(-1)
		<-g.queue
	}()
	select {
	case g.slots <- struct{}{}:
		return g.admitted(), nil
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", ErrCanceled, context.Cause(ctx))
	}
}

// admitted returns the single-use release closure for one occupied slot.
func (g *Gate) admitted() func() {
	g.running.Add(1)
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			g.running.Add(-1)
			<-g.slots
		}
	}
}

// Running reports how many admitted requests are currently executing.
func (g *Gate) Running() int64 {
	if g == nil {
		return 0
	}
	return g.running.Load()
}

// Waiting reports how many requests are queued for a slot.
func (g *Gate) Waiting() int64 {
	if g == nil {
		return 0
	}
	return g.waiting.Load()
}
