package exec

import (
	"repro/internal/qgm"
	"repro/internal/sqltypes"
)

// RowEvaluator evaluates expressions bound to a single base-table quantifier
// against one row at a time. It is the DML execution primitive: DELETE/UPDATE
// predicates and SET expressions compile (qgm.BuildDelete/BuildUpdate) to
// expressions over one quantifier, and maintenance walks the table applying
// them per row. Predicate semantics are full SQL three-valued logic: a DELETE
// removes only rows whose predicate is True — False and Unknown rows stay.
//
// A RowEvaluator reuses its binding buffer across calls and is therefore not
// safe for concurrent use; create one per goroutine.
type RowEvaluator struct {
	ctx exprCtx
	bd  binding
}

// NewRowEvaluator binds the evaluator to the quantifier the expressions
// reference (qgm.DML.Q).
func NewRowEvaluator(q *qgm.Quantifier) *RowEvaluator {
	re := &RowEvaluator{bd: make(binding, 1)}
	re.ctx.setSlot(q.ID, 0)
	return re
}

// Pred evaluates a predicate against the row.
func (r *RowEvaluator) Pred(e qgm.Expr, row []sqltypes.Value) (sqltypes.Tri, error) {
	r.bd[0] = row
	return r.ctx.evalPred(e, r.bd)
}

// Scalar evaluates a value expression against the row.
func (r *RowEvaluator) Scalar(e qgm.Expr, row []sqltypes.Value) (sqltypes.Value, error) {
	r.bd[0] = row
	return r.ctx.evalScalar(e, r.bd)
}
