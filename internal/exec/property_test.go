package exec

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// randomTable builds a small table with three low-cardinality int dimensions
// and a value column (some NULLs in the value column).
func randomTable(rng *rand.Rand, rows int) (*catalog.Catalog, *storage.Store) {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "a", Type: sqltypes.KindInt},
			{Name: "b", Type: sqltypes.KindInt},
			{Name: "c", Type: sqltypes.KindInt},
			{Name: "v", Type: sqltypes.KindInt, Nullable: true},
		},
	})
	store := storage.NewStore()
	meta, _ := cat.Table("t")
	td := store.Create(meta)
	for i := 0; i < rows; i++ {
		v := sqltypes.NewInt(int64(rng.Intn(100)))
		if rng.Intn(8) == 0 {
			v = sqltypes.Null
		}
		td.MustInsert(
			sqltypes.NewInt(int64(rng.Intn(3))),
			sqltypes.NewInt(int64(rng.Intn(4))),
			sqltypes.NewInt(int64(rng.Intn(2))),
			v,
		)
	}
	return cat, store
}

// TestPropertyGroupingSetsAreUnionOfCuboids: for random grouping-set
// combinations, the multidimensional GROUP BY equals the union of its
// NULL-padded simple cuboids (the §5 semantics the matcher relies on).
func TestPropertyGroupingSetsAreUnionOfCuboids(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	colNames := []string{"a", "b", "c"}
	for trial := 0; trial < 60; trial++ {
		cat, store := randomTable(rng, 60+rng.Intn(100))
		engine := NewEngine(store)

		// Random distinct grouping sets over {a, b, c}.
		nSets := 1 + rng.Intn(3)
		seen := map[int]bool{}
		var sets []int // bitmask per set
		for len(sets) < nSets {
			m := rng.Intn(8)
			if !seen[m] {
				seen[m] = true
				sets = append(sets, m)
			}
		}
		setSQL := func(mask int) string {
			var cols []string
			for i, c := range colNames {
				if mask&(1<<i) != 0 {
					cols = append(cols, c)
				}
			}
			return "(" + strings.Join(cols, ", ") + ")"
		}
		var parts []string
		union := 0
		for _, m := range sets {
			parts = append(parts, setSQL(m))
			union |= m
		}
		// Only columns appearing in some grouping set are selectable.
		var selCols []string
		var selIdx []int
		for i, c := range colNames {
			if union&(1<<i) != 0 {
				selCols = append(selCols, c)
				selIdx = append(selIdx, i)
			}
		}
		selList := strings.Join(append(append([]string(nil), selCols...),
			"count(*) as cnt", "sum(v) as sv"), ", ")
		multi := fmt.Sprintf("select %s from t group by grouping sets(%s)",
			selList, strings.Join(parts, ", "))
		g, err := qgm.BuildSQL(multi, cat)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := engine.Run(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Brute force: per-cuboid simple group-by, NULL-padding by hand.
		var want [][]sqltypes.Value
		for _, m := range sets {
			var gb []string
			for i, c := range colNames {
				if m&(1<<i) != 0 {
					gb = append(gb, c)
				}
			}
			var sql string
			if len(gb) == 0 {
				sql = "select count(*) as cnt, sum(v) as sv from t"
			} else {
				sql = fmt.Sprintf("select %s, count(*) as cnt, sum(v) as sv from t group by %s",
					strings.Join(gb, ", "), strings.Join(gb, ", "))
			}
			cg, err := qgm.BuildSQL(sql, cat)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			cres, err := engine.Run(cg)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for _, r := range cres.Rows {
				padded := make([]sqltypes.Value, len(selIdx)+2)
				k := 0
				for j, i := range selIdx {
					if m&(1<<i) != 0 {
						padded[j] = r[k]
						k++
					} else {
						padded[j] = sqltypes.Null
					}
				}
				padded[len(selIdx)] = r[k]
				padded[len(selIdx)+1] = r[k+1]
				want = append(want, padded)
			}
		}
		wantRes := &Result{Cols: got.Cols, Rows: want}
		if diff := EqualResults(wantRes, got); diff != "" {
			t.Fatalf("trial %d (sets %v): %s", trial, sets, diff)
		}
	}
}

// TestThreeValuedLogic: NULL comparisons drop rows, IS NULL sees them, and
// NOT of UNKNOWN stays UNKNOWN.
func TestThreeValuedLogic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cat, store := randomTable(rng, 50)
	engine := NewEngine(store)
	run := func(sql string) *Result {
		g, err := qgm.BuildSQL(sql, cat)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		r, err := engine.Run(g)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return r
	}
	all := run("select v from t")
	nulls := run("select v from t where v is null")
	lt := run("select v from t where v < 50")
	ge := run("select v from t where v >= 50")
	notLt := run("select v from t where not v < 50")
	if len(lt.Rows)+len(ge.Rows)+len(nulls.Rows) != len(all.Rows) {
		t.Fatalf("partition broken: %d + %d + %d != %d",
			len(lt.Rows), len(ge.Rows), len(nulls.Rows), len(all.Rows))
	}
	// NOT(v < 50) is TRUE only where v >= 50: NULLs stay excluded.
	if len(notLt.Rows) != len(ge.Rows) {
		t.Fatalf("NOT over UNKNOWN must stay UNKNOWN: %d vs %d", len(notLt.Rows), len(ge.Rows))
	}
}

// TestAggregatesSkipNulls: COUNT(v) counts non-NULL only; SUM/MIN/MAX ignore
// NULL; COUNT(*) counts all.
func TestAggregatesSkipNulls(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cat, store := randomTable(rng, 200)
	engine := NewEngine(store)
	g, _ := qgm.BuildSQL("select count(*) as all_rows, count(v) as vcnt, sum(v) as sv from t", cat)
	res, err := engine.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	var wantAll, wantV, wantSum int64
	for _, r := range store.MustTable("t").Rows() {
		wantAll++
		if !r[3].IsNull() {
			wantV++
			wantSum += r[3].Int()
		}
	}
	row := res.Rows[0]
	if row[0].Int() != wantAll || row[1].Int() != wantV || row[2].Int() != wantSum {
		t.Fatalf("got %v, want %d %d %d", row, wantAll, wantV, wantSum)
	}
}

// TestNullJoinKeysNeverMatch: equality over NULL is UNKNOWN, so NULL keys
// join with nothing (exercises the hash-join NULL path).
func TestNullJoinKeysNeverMatch(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name:    "l",
		Columns: []catalog.Column{{Name: "k", Type: sqltypes.KindInt, Nullable: true}},
	})
	cat.MustAddTable(&catalog.Table{
		Name:    "r",
		Columns: []catalog.Column{{Name: "k", Type: sqltypes.KindInt, Nullable: true}},
	})
	store := storage.NewStore()
	lm, _ := cat.Table("l")
	rm, _ := cat.Table("r")
	lt := store.Create(lm)
	rt := store.Create(rm)
	lt.MustInsert(sqltypes.NewInt(1))
	lt.MustInsert(sqltypes.Null)
	rt.MustInsert(sqltypes.NewInt(1))
	rt.MustInsert(sqltypes.Null)
	g, err := qgm.BuildSQL("select l.k from l, r where l.k = r.k", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(store).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("NULL keys joined: %v", res.Rows)
	}
}

// TestJoinOrderIndependence: the same 3-way join expressed with different
// FROM orders gives identical results (hash-join planning is order-driven).
func TestJoinOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cat, store := randomTable(rng, 80)
	engine := NewEngine(store)
	q1 := "select t1.a, count(*) as c from t t1, t t2, t t3 where t1.a = t2.a and t2.b = t3.b group by t1.a"
	q2 := "select t1.a, count(*) as c from t t3, t t2, t t1 where t1.a = t2.a and t2.b = t3.b group by t1.a"
	g1, err := qgm.BuildSQL(q1, cat)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := qgm.BuildSQL(q2, cat)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := engine.Run(g1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := engine.Run(g2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := EqualResults(r1, r2); diff != "" {
		t.Fatal(diff)
	}
}

// TestScalarSubqueryEmptyAndError: empty scalar subqueries yield NULL;
// multi-row ones error.
func TestScalarSubqueryEmptyAndError(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cat, store := randomTable(rng, 20)
	engine := NewEngine(store)

	g, err := qgm.BuildSQL("select a, (select v from t where v > 1000) as nothing from t where a = 0", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if !r[1].IsNull() {
			t.Fatalf("empty scalar subquery should be NULL: %v", r)
		}
	}

	g2, err := qgm.BuildSQL("select a, (select v from t) as multi from t", cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(g2); err == nil {
		t.Fatal("multi-row scalar subquery must error")
	}
}

// TestDistinctSelect: SELECT DISTINCT deduplicates exactly.
func TestDistinctSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cat, store := randomTable(rng, 300)
	engine := NewEngine(store)
	g, _ := qgm.BuildSQL("select distinct a, b from t", cat)
	res, err := engine.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int64]bool{}
	for _, r := range store.MustTable("t").Rows() {
		want[[2]int64{r[0].Int(), r[1].Int()}] = true
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("distinct: got %d, want %d", len(res.Rows), len(want))
	}
}

// TestGlobalAggregateOverEmptyInput: COUNT over an empty filter yields one
// row with 0; SUM yields NULL.
func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cat, store := randomTable(rng, 20)
	engine := NewEngine(store)
	g, _ := qgm.BuildSQL("select count(*) as c, sum(v) as s from t where a > 999", cat)
	res, err := engine.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("empty global aggregate: %v", res.Rows)
	}
	// Grouped aggregate over empty input yields no rows.
	g2, _ := qgm.BuildSQL("select a, count(*) as c from t where a > 999 group by a", cat)
	res2, err := engine.Run(g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 0 {
		t.Fatalf("grouped empty aggregate: %v", res2.Rows)
	}
}

// TestCaseExpression: CASE evaluates arms in order with 3VL conditions.
func TestCaseExpression(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cat, store := randomTable(rng, 100)
	engine := NewEngine(store)
	g, err := qgm.BuildSQL(`select v, case when v is null then -1 when v < 50 then 0 else 1 end as bucket from t`, cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		want := int64(1)
		switch {
		case r[0].IsNull():
			want = -1
		case r[0].Int() < 50:
			want = 0
		}
		if r[1].Int() != want {
			t.Fatalf("CASE wrong for %v: got %d", r[0], r[1].Int())
		}
	}
}

// TestDistinctAggregateVariants: SUM/MIN/MAX with DISTINCT against brute
// force.
func TestDistinctAggregateVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cat, store := randomTable(rng, 300)
	engine := NewEngine(store)
	g, err := qgm.BuildSQL(`select a, count(distinct v) as cd, sum(distinct v) as sd,
		min(distinct v) as mind, max(distinct v) as maxd from t group by a`, cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	type agg struct {
		vals map[int64]bool
	}
	want := map[int64]*agg{}
	for _, r := range store.MustTable("t").Rows() {
		a := r[0].Int()
		if want[a] == nil {
			want[a] = &agg{vals: map[int64]bool{}}
		}
		if !r[3].IsNull() {
			want[a].vals[r[3].Int()] = true
		}
	}
	for _, r := range res.Rows {
		w := want[r[0].Int()]
		var sum, mn, mx int64
		first := true
		for v := range w.vals {
			sum += v
			if first || v < mn {
				mn = v
			}
			if first || v > mx {
				mx = v
			}
			first = false
		}
		if r[1].Int() != int64(len(w.vals)) {
			t.Fatalf("count distinct: got %v want %d", r[1], len(w.vals))
		}
		if len(w.vals) == 0 {
			if !r[2].IsNull() {
				t.Fatalf("sum distinct over empty should be NULL: %v", r)
			}
			continue
		}
		if r[2].Int() != sum || r[3].Int() != mn || r[4].Int() != mx {
			t.Fatalf("distinct aggs wrong: %v want sum=%d min=%d max=%d", r, sum, mn, mx)
		}
	}
}

// TestDateFunctions: YEAR/MONTH/DAY over DATE columns and NULL propagation.
func TestDateFunctions(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "d",
		Columns: []catalog.Column{
			{Name: "dt", Type: sqltypes.KindDate, Nullable: true},
		},
	})
	store := storage.NewStore()
	meta, _ := cat.Table("d")
	td := store.Create(meta)
	td.MustInsert(sqltypes.MustParseDate("1993-07-04"))
	td.MustInsert(sqltypes.Null)
	g, err := qgm.BuildSQL("select year(dt) as y, month(dt) as m, day(dt) as dd from d", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(store).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	SortRows(res.Rows)
	if !res.Rows[0][0].IsNull() || !res.Rows[0][1].IsNull() || !res.Rows[0][2].IsNull() {
		t.Fatalf("NULL date should propagate: %v", res.Rows[0])
	}
	if res.Rows[1][0].Int() != 1993 || res.Rows[1][1].Int() != 7 || res.Rows[1][2].Int() != 4 {
		t.Fatalf("date parts: %v", res.Rows[1])
	}
}

// TestArithmeticErrorsSurface: division by zero aborts execution with an
// error rather than silently corrupting results.
func TestArithmeticErrorsSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cat, store := randomTable(rng, 10)
	g, err := qgm.BuildSQL("select a / (a - a) as boom from t", cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(store).Run(g); err == nil {
		t.Fatal("division by zero must error")
	}
}

// TestLikeAndConcat: the LIKE predicate and || operator end to end.
func TestLikeAndConcat(t *testing.T) {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "names",
		Columns: []catalog.Column{
			{Name: "first", Type: sqltypes.KindString},
			{Name: "last", Type: sqltypes.KindString, Nullable: true},
		},
	})
	store := storage.NewStore()
	meta, _ := cat.Table("names")
	td := store.Create(meta)
	td.MustInsert(sqltypes.NewString("ada"), sqltypes.NewString("lovelace"))
	td.MustInsert(sqltypes.NewString("alan"), sqltypes.NewString("turing"))
	td.MustInsert(sqltypes.NewString("grace"), sqltypes.Null)
	engine := NewEngine(store)
	run := func(sql string) *Result {
		g, err := qgm.BuildSQL(sql, cat)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		r, err := engine.Run(g)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return r
	}
	if r := run("select first from names where first like 'a%'"); len(r.Rows) != 2 {
		t.Fatalf("a%%: %v", r.Rows)
	}
	if r := run("select first from names where first like '_da'"); len(r.Rows) != 1 {
		t.Fatalf("_da: %v", r.Rows)
	}
	if r := run("select first from names where first like '%a%a%'"); len(r.Rows) != 2 {
		t.Fatalf("%%a%%a%%: %v", r.Rows) // ada and alan both contain two a's
	}
	// NULL on either side is UNKNOWN: grace drops out of both LIKE and NOT LIKE.
	if r := run("select first from names where last like '%ing'"); len(r.Rows) != 1 {
		t.Fatalf("null like: %v", r.Rows)
	}
	if r := run("select first from names where last not like '%ing'"); len(r.Rows) != 1 {
		t.Fatalf("null not like: %v", r.Rows)
	}
	r := run("select first || ' ' || last as full from names where last is not null")
	SortRows(r.Rows)
	if r.Rows[0][0].Str() != "ada lovelace" || r.Rows[1][0].Str() != "alan turing" {
		t.Fatalf("concat: %v", r.Rows)
	}
	// NULL propagates through concat.
	r = run("select first || last as full from names where first = 'grace'")
	if !r.Rows[0][0].IsNull() {
		t.Fatalf("null concat: %v", r.Rows)
	}
}

// starTables builds a fact table keyed into a small dimension: some fact keys
// miss the dimension, some are NULL, and several dimension keys carry
// duplicate rows (multi-match join expansion).
func starTables(rng *rand.Rand, facts int) (*catalog.Catalog, *storage.Store) {
	cat := catalog.New()
	cat.MustAddTable(&catalog.Table{
		Name: "f",
		Columns: []catalog.Column{
			{Name: "fk", Type: sqltypes.KindInt, Nullable: true},
			{Name: "v", Type: sqltypes.KindInt, Nullable: true},
		},
	})
	cat.MustAddTable(&catalog.Table{
		Name: "d",
		Columns: []catalog.Column{
			{Name: "dk", Type: sqltypes.KindInt},
			{Name: "nm", Type: sqltypes.KindString},
		},
	})
	store := storage.NewStore()
	fm, _ := cat.Table("f")
	dm, _ := cat.Table("d")
	fd := store.Create(fm)
	dd := store.Create(dm)
	for i := 0; i < 12; i++ {
		dd.MustInsert(sqltypes.NewInt(int64(i%8)), sqltypes.NewString(fmt.Sprintf("d%02d", i%5)))
	}
	for i := 0; i < facts; i++ {
		k := sqltypes.NewInt(int64(rng.Intn(10)))
		if rng.Intn(10) == 0 {
			k = sqltypes.Null
		}
		v := sqltypes.NewInt(int64(rng.Intn(100)))
		if rng.Intn(8) == 0 {
			v = sqltypes.Null
		}
		fd.MustInsert(k, v)
	}
	return cat, store
}

// requireIdentical asserts got matches want row for row, in order, by group
// key (bit-exact for every kind; integer-valued floats share keys with ints,
// the same equivalence the engine's own grouping uses).
func requireIdentical(t *testing.T, sql string, want, got *Result) {
	t.Helper()
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: row count %d vs %d", sql, len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		if len(want.Rows[i]) != len(got.Rows[i]) {
			t.Fatalf("%s: row %d arity %d vs %d", sql, i, len(want.Rows[i]), len(got.Rows[i]))
		}
		for j := range want.Rows[i] {
			if want.Rows[i][j].GroupKey() != got.Rows[i][j].GroupKey() {
				t.Fatalf("%s: row %d col %d: %v vs %v", sql, i, j, want.Rows[i], got.Rows[i])
			}
		}
	}
}

// TestPropertyVectorizedMatchesRowEngine: over random data and the plan
// shapes the vectorized engine accelerates (chunk filters, grouped and global
// aggregates, grouping sets, DISTINCT aggregates, star-join GROUP BY), the
// serial vectorized results are identical to the serial row engine — same
// rows, same order, same bits (serial float SUMs accumulate in the same
// order, so no tolerance is needed).
func TestPropertyVectorizedMatchesRowEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	check := func(cat *catalog.Catalog, store *storage.Store, sql string) bool {
		t.Helper()
		engine := NewEngine(store)
		g, err := qgm.BuildSQL(sql, cat)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		row, err := engine.RunCtx(context.Background(), g, Config{Parallelism: 1, Vectorize: VecOff})
		if err != nil {
			t.Fatalf("%s (row): %v", sql, err)
		}
		vec, err := engine.RunCtx(context.Background(), g, Config{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s (vectorized): %v", sql, err)
		}
		requireIdentical(t, sql, row, vec)
		return vec.Mode == ModeVectorized
	}
	tQueries := []string{
		"select a, b, count(*) as cnt, sum(v) as sv from t group by a, b",
		"select a, min(v) as mn, max(v) as mx from t where b < 3 group by a",
		"select c, count(distinct v) as dv, sum(distinct v) as sd from t group by c",
		"select a, b, sum(v) as sv from t group by grouping sets((a, b), (a), ())",
		"select count(*) as cnt, sum(v) as sv from t where a < 2 and c = 1",
		"select v from t where v < 50",
	}
	starQueries := []string{
		"select nm, count(*) as cnt, sum(v) as sv from f, d where fk = dk group by nm",
		"select nm, min(v) as mn, max(v) as mx from f, d where fk = dk and dk < 6 group by nm",
		"select dk, sum(v) as sv from f, d where fk = dk and v < 50 group by dk",
	}
	sawVectorized := false
	for trial := 0; trial < 12; trial++ {
		cat, store := randomTable(rng, 50+rng.Intn(1500))
		for _, sql := range tQueries {
			if check(cat, store, sql) {
				sawVectorized = true
			}
		}
		scat, sstore := starTables(rng, 50+rng.Intn(1500))
		for _, sql := range starQueries {
			if check(scat, sstore, sql) {
				sawVectorized = true
			}
		}
	}
	if !sawVectorized {
		t.Fatal("vectorized path never engaged")
	}
}
