package exec

import (
	"fmt"
	"strings"

	"repro/internal/qgm"
	"repro/internal/sqltypes"
)

// evalGroupBy evaluates a GROUP BY box: for each grouping set of the
// canonicalized supergroup, it groups the child rows by the set's columns and
// computes the aggregate columns, NULL-padding the grouped-out grouping
// columns (paper §5, Figure 12 semantics).
func (ev *evaluator) evalGroupBy(b *qgm.Box) ([][]sqltypes.Value, error) {
	if len(b.Quantifiers) != 1 || b.Quantifiers[0].Kind != qgm.ForEach {
		return nil, fmt.Errorf("exec: GROUP BY box %s must have one ForEach child", b.Label)
	}
	q := b.Quantifiers[0]
	childRows, err := ev.evalBox(q.Box)
	if err != nil {
		return nil, err
	}
	ectx := &exprCtx{scalars: map[int]sqltypes.Value{}, eval: ev}
	bd := &binding{qids: []int{q.ID}, rows: [][]sqltypes.Value{nil}}

	// Pre-evaluate grouping-column and aggregate-argument expressions per
	// input row (they are usually simple QNCs, but compensation boxes may
	// carry arbitrary expressions).
	type aggSpec struct {
		agg *qgm.Agg
		col int
	}
	var aggSpecs []aggSpec
	for i := range b.Cols {
		if b.IsGroupCol(i) {
			continue
		}
		agg, ok := b.Cols[i].Expr.(*qgm.Agg)
		if !ok {
			return nil, fmt.Errorf("exec: GROUP BY output column %q is not an aggregate", b.Cols[i].Name)
		}
		aggSpecs = append(aggSpecs, aggSpec{agg: agg, col: i})
	}

	nGroup := len(b.GroupBy)
	groupVals := make([][]sqltypes.Value, len(childRows)) // per row: grouping col values, in GroupBy order
	argVals := make([][]sqltypes.Value, len(childRows))   // per row: aggregate argument values
	for ri, r := range childRows {
		if err := ev.checkpoint(1); err != nil {
			return nil, err
		}
		bd.rows[0] = r
		gv := make([]sqltypes.Value, nGroup)
		for pos, col := range b.GroupBy {
			v, err := ectx.evalScalar(b.Cols[col].Expr, bd)
			if err != nil {
				return nil, err
			}
			gv[pos] = v
		}
		groupVals[ri] = gv
		av := make([]sqltypes.Value, len(aggSpecs))
		for ai, spec := range aggSpecs {
			if spec.agg.Star {
				continue
			}
			v, err := ectx.evalScalar(spec.agg.Arg, bd)
			if err != nil {
				return nil, err
			}
			av[ai] = v
		}
		argVals[ri] = av
	}

	sets := b.GroupingSets
	if len(sets) == 0 {
		sets = [][]int{allInts(nGroup)}
	}

	var out [][]sqltypes.Value
	for _, gs := range sets {
		inSet := make([]bool, nGroup)
		for _, pos := range gs {
			inSet[pos] = true
		}
		// A global aggregate (empty grouping set) over empty input produces
		// one row: COUNT is 0 and the other aggregates are NULL.
		if len(gs) == 0 && len(childRows) == 0 {
			row := make([]sqltypes.Value, len(b.Cols))
			for _, col := range b.GroupBy {
				row[col] = sqltypes.Null
			}
			empty := newGroupState(len(aggSpecs))
			for ai, spec := range aggSpecs {
				row[spec.col] = empty.aggs[ai].result(spec.agg)
			}
			out = append(out, row)
			continue
		}
		groups := map[string]*groupState{}
		var order []string
		for ri := range childRows {
			if err := ev.checkpoint(0); err != nil {
				return nil, err
			}
			var sb strings.Builder
			for _, pos := range gs {
				sb.WriteString(groupVals[ri][pos].GroupKey())
				sb.WriteByte(0)
			}
			k := sb.String()
			g, ok := groups[k]
			if !ok {
				g = newGroupState(len(aggSpecs))
				g.reprRow = ri
				groups[k] = g
				order = append(order, k)
			}
			for ai, spec := range aggSpecs {
				if err := g.aggs[ai].accumulate(spec.agg, argVals[ri][ai]); err != nil {
					return nil, err
				}
			}
		}
		for _, k := range order {
			if err := ev.checkpoint(1); err != nil {
				return nil, err
			}
			g := groups[k]
			row := make([]sqltypes.Value, len(b.Cols))
			for pos, col := range b.GroupBy {
				if inSet[pos] {
					row[col] = groupVals[g.reprRow][pos]
				} else {
					row[col] = sqltypes.Null
				}
			}
			for ai, spec := range aggSpecs {
				row[spec.col] = g.aggs[ai].result(spec.agg)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func allInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

type groupState struct {
	reprRow int
	aggs    []aggState
}

func newGroupState(n int) *groupState {
	return &groupState{aggs: make([]aggState, n)}
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count    int64
	sum      sqltypes.Value
	sumSet   bool
	minV     sqltypes.Value
	maxV     sqltypes.Value
	extSet   bool
	distinct map[string]sqltypes.Value
}

func (a *aggState) accumulate(spec *qgm.Agg, arg sqltypes.Value) error {
	if spec.Star {
		a.count++
		return nil
	}
	if arg.IsNull() {
		return nil // aggregates skip NULL inputs
	}
	if spec.Distinct {
		if a.distinct == nil {
			a.distinct = map[string]sqltypes.Value{}
		}
		a.distinct[arg.GroupKey()] = arg
		return nil
	}
	switch spec.Op {
	case "count":
		a.count++
	case "sum":
		if !a.sumSet {
			a.sum = arg
			a.sumSet = true
		} else {
			s, err := sqltypes.Add(a.sum, arg)
			if err != nil {
				return err
			}
			a.sum = s
		}
	case "min", "max":
		if !a.extSet {
			a.minV, a.maxV = arg, arg
			a.extSet = true
		} else {
			if c, err := sqltypes.Compare(arg, a.minV); err == nil && c < 0 {
				a.minV = arg
			}
			if c, err := sqltypes.Compare(arg, a.maxV); err == nil && c > 0 {
				a.maxV = arg
			}
		}
	default:
		return fmt.Errorf("exec: unknown aggregate %q", spec.Op)
	}
	return nil
}

func (a *aggState) result(spec *qgm.Agg) sqltypes.Value {
	if spec.Distinct {
		switch spec.Op {
		case "count":
			return sqltypes.NewInt(int64(len(a.distinct)))
		case "sum":
			var sum sqltypes.Value
			set := false
			for _, v := range a.distinct {
				if !set {
					sum = v
					set = true
					continue
				}
				s, err := sqltypes.Add(sum, v)
				if err != nil {
					return sqltypes.Null
				}
				sum = s
			}
			if !set {
				return sqltypes.Null
			}
			return sum
		case "min", "max":
			var ext sqltypes.Value
			set := false
			for _, v := range a.distinct {
				if !set {
					ext = v
					set = true
					continue
				}
				c, err := sqltypes.Compare(v, ext)
				if err != nil {
					return sqltypes.Null
				}
				if (spec.Op == "min" && c < 0) || (spec.Op == "max" && c > 0) {
					ext = v
				}
			}
			if !set {
				return sqltypes.Null
			}
			return ext
		}
		return sqltypes.Null
	}
	switch spec.Op {
	case "count":
		return sqltypes.NewInt(a.count)
	case "sum":
		if !a.sumSet {
			return sqltypes.Null
		}
		return a.sum
	case "min":
		if !a.extSet {
			return sqltypes.Null
		}
		return a.minV
	case "max":
		if !a.extSet {
			return sqltypes.Null
		}
		return a.maxV
	default:
		return sqltypes.Null
	}
}
