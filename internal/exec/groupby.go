package exec

import (
	"fmt"

	"repro/internal/qgm"
	"repro/internal/sqltypes"
)

// evalGroupBy evaluates a GROUP BY box: for each grouping set of the
// canonicalized supergroup, it groups the child rows by the set's columns and
// computes the aggregate columns, NULL-padding the grouped-out grouping
// columns (paper §5, Figure 12 semantics).
//
// Both phases are partitioned across workers: the per-row expression
// pre-evaluation writes disjoint index ranges, and aggregation builds one
// partial (local map of groupState) per contiguous chunk, merged in ascending
// chunk order. Because chunks are contiguous and in order, the merged
// first-seen key order and each group's representative row are identical to
// the serial path; only floating-point SUM may re-associate.
func (ev *evaluator) evalGroupBy(b *qgm.Box) ([][]sqltypes.Value, error) {
	if len(b.Quantifiers) != 1 || b.Quantifiers[0].Kind != qgm.ForEach {
		return nil, fmt.Errorf("exec: GROUP BY box %s must have one ForEach child", b.Label)
	}
	q := b.Quantifiers[0]
	childRows, err := ev.evalBox(q.Box)
	if err != nil {
		return nil, err
	}
	ectx := &exprCtx{scalars: map[int]sqltypes.Value{}}
	ectx.setSlot(q.ID, 0)

	// Pre-evaluate grouping-column and aggregate-argument expressions per
	// input row (they are usually simple QNCs, but compensation boxes may
	// carry arbitrary expressions).
	type aggSpec struct {
		agg *qgm.Agg
		col int
	}
	var aggSpecs []aggSpec
	for i := range b.Cols {
		if b.IsGroupCol(i) {
			continue
		}
		agg, ok := b.Cols[i].Expr.(*qgm.Agg)
		if !ok {
			return nil, fmt.Errorf("exec: GROUP BY output column %q is not an aggregate", b.Cols[i].Name)
		}
		aggSpecs = append(aggSpecs, aggSpec{agg: agg, col: i})
	}

	nGroup := len(b.GroupBy)

	// Fused fast path (compiled mode only): when every grouping column and
	// aggregate argument lowers to a direct column reference into the child
	// row, the pre-evaluation pass and its two per-row intermediate slices are
	// skipped entirely and aggregation reads the child rows in place. This is
	// where compilation pays on aggregation-heavy plans; the interpreter keeps
	// the general two-pass structure.
	fused := !ev.interp
	groupCols := make([]int, nGroup)
	argCols := make([]int, len(aggSpecs))
	maxCol := -1
	directCol := func(e qgm.Expr) (int, bool) {
		cr, ok := e.(*qgm.ColRef)
		if !ok || cr.Q == nil || cr.Q.ID != q.ID {
			return -1, false
		}
		return cr.Col, true
	}
	if fused {
		for pos, col := range b.GroupBy {
			c, ok := directCol(b.Cols[col].Expr)
			if !ok {
				fused = false
				break
			}
			groupCols[pos] = c
			if c > maxCol {
				maxCol = c
			}
		}
	}
	if fused {
		for ai, spec := range aggSpecs {
			if spec.agg.Star {
				argCols[ai] = -1
				continue
			}
			c, ok := directCol(spec.agg.Arg)
			if !ok {
				fused = false
				break
			}
			argCols[ai] = c
			if c > maxCol {
				maxCol = c
			}
		}
	}

	var groupVals [][]sqltypes.Value // per row: grouping col values, in GroupBy order
	var argVals [][]sqltypes.Value   // per row: aggregate argument values
	if fused {
		// Every fused expression is a fully compiled direct access.
		for range b.GroupBy {
			ev.countCompile(true)
		}
		for _, spec := range aggSpecs {
			if !spec.agg.Star {
				ev.countCompile(true)
			}
		}
	} else {
		// Compile the grouping-column and aggregate-argument expressions to
		// kernels once; COUNT(*) has no argument and keeps a nil kernel.
		groupKs := make([]scalarKernel, nGroup)
		for pos, col := range b.GroupBy {
			groupKs[pos] = ev.scalarKernel(ectx, b.Cols[col].Expr)
		}
		argKs := make([]scalarKernel, len(aggSpecs))
		for ai, spec := range aggSpecs {
			if !spec.agg.Star {
				argKs[ai] = ev.scalarKernel(ectx, spec.agg.Arg)
			}
		}
		groupVals = make([][]sqltypes.Value, len(childRows))
		argVals = make([][]sqltypes.Value, len(childRows))
		err = ev.parallelChunks(len(childRows), ev.workersFor(len(childRows)),
			func(w, lo, hi int, chg *charger) error {
				bd := binding{nil}
				for ri := lo; ri < hi; ri++ {
					if err := chg.checkpoint(1); err != nil {
						return err
					}
					bd[0] = childRows[ri]
					gv := make([]sqltypes.Value, nGroup)
					for pos, k := range groupKs {
						v, err := k(bd)
						if err != nil {
							return err
						}
						gv[pos] = v
					}
					groupVals[ri] = gv
					av := make([]sqltypes.Value, len(aggSpecs))
					for ai, k := range argKs {
						if k == nil {
							continue
						}
						v, err := k(bd)
						if err != nil {
							return err
						}
						av[ai] = v
					}
					argVals[ri] = av
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
	}

	sets := b.GroupingSets
	if len(sets) == 0 {
		sets = [][]int{allInts(nGroup)}
	}

	var out [][]sqltypes.Value
	for si, gs := range sets {
		inSet := make([]bool, nGroup)
		for _, pos := range gs {
			inSet[pos] = true
		}
		// Fused mode charges the per-input-row budget here (once, on the first
		// grouping set) because the pre-evaluation pass that normally charges
		// it was skipped.
		rowCharge := 0
		var gsCols []int
		if fused {
			if si == 0 {
				rowCharge = 1
			}
			gsCols = make([]int, len(gs))
			for i, pos := range gs {
				gsCols[i] = groupCols[pos]
			}
		}
		// A global aggregate (empty grouping set) over empty input produces
		// one row: COUNT is 0 and the other aggregates are NULL.
		if len(gs) == 0 && len(childRows) == 0 {
			row := make([]sqltypes.Value, len(b.Cols))
			for _, col := range b.GroupBy {
				row[col] = sqltypes.Null
			}
			empty := newGroupState(len(aggSpecs))
			for ai, spec := range aggSpecs {
				row[spec.col] = empty.aggs[ai].result(spec.agg)
			}
			out = append(out, row)
			continue
		}

		// Build one partial per chunk, then merge in chunk order.
		workers := ev.workersFor(len(childRows))
		partials := make([]*groupPartial, workers)
		err = ev.parallelChunks(len(childRows), workers,
			func(w, lo, hi int, chg *charger) error {
				p := &groupPartial{groups: map[string]*groupState{}}
				var buf []byte
				for ri := lo; ri < hi; ri++ {
					if err := chg.checkpoint(rowCharge); err != nil {
						return err
					}
					row := childRows[ri]
					if fused && maxCol >= len(row) {
						return fmt.Errorf("exec: column %d out of range (row width %d)", maxCol, len(row))
					}
					buf = buf[:0]
					if fused {
						for _, col := range gsCols {
							buf = row[col].AppendGroupKey(buf)
							buf = append(buf, 0)
						}
					} else {
						for _, pos := range gs {
							buf = groupVals[ri][pos].AppendGroupKey(buf)
							buf = append(buf, 0)
						}
					}
					g, ok := p.groups[string(buf)]
					if !ok {
						g = newGroupState(len(aggSpecs))
						g.reprRow = ri
						k := string(buf)
						p.groups[k] = g
						p.order = append(p.order, k)
					}
					for ai, spec := range aggSpecs {
						var av sqltypes.Value
						if fused {
							if argCols[ai] >= 0 {
								av = row[argCols[ai]]
							}
						} else {
							av = argVals[ri][ai]
						}
						if err := g.aggs[ai].accumulate(spec.agg, av); err != nil {
							return err
						}
					}
				}
				partials[w] = p
				return nil
			})
		if err != nil {
			return nil, err
		}

		groups := partials[0].groups
		order := partials[0].order
		for _, p := range partials[1:] {
			for _, k := range p.order {
				o := p.groups[k]
				g, ok := groups[k]
				if !ok {
					// First chunk to see the key: adopt its state; reprRow is
					// globally first because chunks are merged in row order.
					groups[k] = o
					order = append(order, k)
					continue
				}
				for ai, spec := range aggSpecs {
					if err := g.aggs[ai].merge(spec.agg, &o.aggs[ai]); err != nil {
						return nil, err
					}
				}
			}
		}

		for _, k := range order {
			if err := ev.checkpoint(1); err != nil {
				return nil, err
			}
			g := groups[k]
			row := make([]sqltypes.Value, len(b.Cols))
			for pos, col := range b.GroupBy {
				switch {
				case !inSet[pos]:
					row[col] = sqltypes.Null
				case fused:
					row[col] = childRows[g.reprRow][groupCols[pos]]
				default:
					row[col] = groupVals[g.reprRow][pos]
				}
			}
			for ai, spec := range aggSpecs {
				row[spec.col] = g.aggs[ai].result(spec.agg)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func allInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// groupPartial is one worker's aggregation state over its chunk: group states
// keyed by composite group key, plus the chunk-local first-seen key order.
type groupPartial struct {
	groups map[string]*groupState
	order  []string
}

type groupState struct {
	reprRow int
	aggs    []aggState
}

func newGroupState(n int) *groupState {
	return &groupState{aggs: make([]aggState, n)}
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count    int64
	sum      sqltypes.Value
	sumSet   bool
	minV     sqltypes.Value
	maxV     sqltypes.Value
	extSet   bool
	distinct map[string]sqltypes.Value
}

func (a *aggState) accumulate(spec *qgm.Agg, arg sqltypes.Value) error {
	if spec.Star {
		a.count++
		return nil
	}
	if arg.IsNull() {
		return nil // aggregates skip NULL inputs
	}
	if spec.Distinct {
		if a.distinct == nil {
			a.distinct = map[string]sqltypes.Value{}
		}
		a.distinct[arg.GroupKey()] = arg
		return nil
	}
	switch spec.Op {
	case "count":
		a.count++
	case "sum":
		if !a.sumSet {
			a.sum = arg
			a.sumSet = true
		} else {
			s, err := sqltypes.Add(a.sum, arg)
			if err != nil {
				return err
			}
			a.sum = s
		}
	case "min", "max":
		if !a.extSet {
			a.minV, a.maxV = arg, arg
			a.extSet = true
		} else {
			if c, err := sqltypes.Compare(arg, a.minV); err == nil && c < 0 {
				a.minV = arg
			}
			if c, err := sqltypes.Compare(arg, a.maxV); err == nil && c > 0 {
				a.maxV = arg
			}
		}
	default:
		return fmt.Errorf("exec: unknown aggregate %q", spec.Op)
	}
	return nil
}

// merge folds another chunk's state for the same group into a. This is the
// partial-aggregate combine of parallel aggregation: COUNT adds, SUM adds the
// partial sums, MIN/MAX compare extrema, and DISTINCT unions the key sets.
// The other state must come from a later chunk (a's reprRow stays the
// globally first row) and is consumed by the merge.
func (a *aggState) merge(spec *qgm.Agg, o *aggState) error {
	if spec.Distinct {
		if o.distinct != nil {
			if a.distinct == nil {
				a.distinct = o.distinct
			} else {
				for k, v := range o.distinct {
					a.distinct[k] = v
				}
			}
		}
		return nil
	}
	a.count += o.count // COUNT(*) and COUNT(x) both live here
	if o.sumSet {
		if !a.sumSet {
			a.sum, a.sumSet = o.sum, true
		} else {
			s, err := sqltypes.Add(a.sum, o.sum)
			if err != nil {
				return err
			}
			a.sum = s
		}
	}
	if o.extSet {
		if !a.extSet {
			a.minV, a.maxV, a.extSet = o.minV, o.maxV, true
		} else {
			if c, err := sqltypes.Compare(o.minV, a.minV); err == nil && c < 0 {
				a.minV = o.minV
			}
			if c, err := sqltypes.Compare(o.maxV, a.maxV); err == nil && c > 0 {
				a.maxV = o.maxV
			}
		}
	}
	return nil
}

func (a *aggState) result(spec *qgm.Agg) sqltypes.Value {
	if spec.Distinct {
		switch spec.Op {
		case "count":
			return sqltypes.NewInt(int64(len(a.distinct)))
		case "sum":
			var sum sqltypes.Value
			set := false
			for _, v := range a.distinct {
				if !set {
					sum = v
					set = true
					continue
				}
				s, err := sqltypes.Add(sum, v)
				if err != nil {
					return sqltypes.Null
				}
				sum = s
			}
			if !set {
				return sqltypes.Null
			}
			return sum
		case "min", "max":
			var ext sqltypes.Value
			set := false
			for _, v := range a.distinct {
				if !set {
					ext = v
					set = true
					continue
				}
				c, err := sqltypes.Compare(v, ext)
				if err != nil {
					return sqltypes.Null
				}
				if (spec.Op == "min" && c < 0) || (spec.Op == "max" && c > 0) {
					ext = v
				}
			}
			if !set {
				return sqltypes.Null
			}
			return ext
		}
		return sqltypes.Null
	}
	switch spec.Op {
	case "count":
		return sqltypes.NewInt(a.count)
	case "sum":
		if !a.sumSet {
			return sqltypes.Null
		}
		return a.sum
	case "min":
		if !a.extSet {
			return sqltypes.Null
		}
		return a.minV
	case "max":
		if !a.extSet {
			return sqltypes.Null
		}
		return a.maxV
	default:
		return sqltypes.Null
	}
}
