// Package exec interprets QGM graphs over an in-memory storage.Store. It
// exists to (a) verify that every rewrite the matching algorithm produces is
// result-identical to the original query, and (b) measure the latency
// improvements that motivate Automatic Summary Tables.
//
// The interpreter evaluates boxes bottom-up with per-box memoization (QGM is
// a DAG — a shared base table evaluates once). SELECT boxes join their
// ForEach children — using hash joins when equality predicates connect the
// next child to the already-joined prefix, falling back to nested loops —
// then apply residual predicates under SQL three-valued logic and compute the
// output expressions. GROUP BY boxes evaluate each grouping set of their
// canonicalized supergroup (paper §5: a cube query is the union of its
// cuboids, NULL-padding the grouped-out columns).
package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Result is the output of running a graph.
type Result struct {
	Cols []string
	Rows [][]sqltypes.Value
}

// Engine runs QGM graphs against a store.
type Engine struct {
	store *storage.Store
}

// NewEngine returns an engine over the store.
func NewEngine(store *storage.Store) *Engine {
	return &Engine{store: store}
}

// Run evaluates the graph with no budget and returns its result.
func (e *Engine) Run(g *qgm.Graph) (*Result, error) {
	return e.RunCtx(context.Background(), g, Limits{})
}

// RunCtx evaluates the graph under a context and a resource budget. It
// returns an error wrapping ErrCanceled when the context (or Limits.Timeout)
// expires mid-run and one wrapping ErrBudgetExceeded when the run
// materializes more than Limits.MaxRows rows.
func (e *Engine) RunCtx(ctx context.Context, g *qgm.Graph, lim Limits) (*Result, error) {
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	ev := &evaluator{
		store:   e.store,
		memo:    map[int][][]sqltypes.Value{},
		ctx:     ctx,
		maxRows: lim.MaxRows,
	}
	rows, err := ev.evalBox(g.Root)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(g.Root.Cols))
	for i, c := range g.Root.Cols {
		cols[i] = c.Name
	}
	return &Result{Cols: cols, Rows: rows}, nil
}

// MustRun is Run that panics on error; for tests.
func (e *Engine) MustRun(g *qgm.Graph) *Result {
	r, err := e.Run(g)
	if err != nil {
		panic(err)
	}
	return r
}

type evaluator struct {
	store *storage.Store
	memo  map[int][][]sqltypes.Value

	ctx      context.Context
	maxRows  int // 0 = unlimited
	rowsUsed int
	polls    int
}

func (ev *evaluator) evalBox(b *qgm.Box) ([][]sqltypes.Value, error) {
	if rows, ok := ev.memo[b.ID]; ok {
		return rows, nil
	}
	if err := ev.pollCtx(); err != nil {
		return nil, err
	}
	var rows [][]sqltypes.Value
	var err error
	switch b.Kind {
	case qgm.BaseTableBox:
		rows, err = ev.store.Scan(b.Table.Name)
		if err == nil {
			err = ev.checkpoint(len(rows))
		}
		if err == nil {
			// Poll unconditionally after a scan: a slow storage layer must
			// surface the deadline here, not rows later in a join loop.
			err = ev.pollCtx()
		}
	case qgm.SelectBox:
		rows, err = ev.evalSelect(b)
	case qgm.GroupByBox:
		rows, err = ev.evalGroupBy(b)
	default:
		err = fmt.Errorf("exec: unsupported box kind %v", b.Kind)
	}
	if err != nil {
		return nil, err
	}
	ev.memo[b.ID] = rows
	return rows, nil
}

// binding carries the current row of each in-scope quantifier.
type binding struct {
	qids []int
	rows [][]sqltypes.Value
}

func (bd *binding) row(qid int) []sqltypes.Value {
	for i, id := range bd.qids {
		if id == qid {
			return bd.rows[i]
		}
	}
	return nil
}

func (ev *evaluator) evalSelect(b *qgm.Box) ([][]sqltypes.Value, error) {
	var forEach []*qgm.Quantifier
	scalars := map[int]sqltypes.Value{}
	for _, q := range b.Quantifiers {
		switch q.Kind {
		case qgm.ForEach:
			forEach = append(forEach, q)
		case qgm.Scalar:
			rows, err := ev.evalBox(q.Box)
			if err != nil {
				return nil, err
			}
			switch len(rows) {
			case 0:
				scalars[q.ID] = sqltypes.Null
			case 1:
				scalars[q.ID] = rows[0][0]
			default:
				return nil, fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
			}
		}
	}

	ectx := &exprCtx{scalars: scalars, eval: ev}

	preds := b.Preds
	usedPred := make([]bool, len(preds))

	// Join children left to right; before each step, pick an unjoined child
	// connected to the current prefix by an equality predicate so it can be
	// hash-joined.
	var bindings []*binding
	joined := map[int]bool{}
	if len(forEach) == 0 {
		bindings = []*binding{{}}
	}

	remaining := append([]*qgm.Quantifier(nil), forEach...)
	for len(remaining) > 0 {
		// Choose next child: if nothing joined yet take the first; otherwise
		// prefer one with an available equality predicate to the prefix.
		nextIdx := 0
		var hashPreds []int
		if len(joined) > 0 {
			for ci, cand := range remaining {
				hp := ev.hashablePreds(preds, usedPred, joined, cand.ID, scalars)
				if len(hp) > 0 {
					nextIdx = ci
					hashPreds = hp
					break
				}
			}
		}
		next := remaining[nextIdx]
		remaining = append(remaining[:nextIdx], remaining[nextIdx+1:]...)

		childRows, err := ev.evalBox(next.Box)
		if err != nil {
			return nil, err
		}

		if len(joined) == 0 {
			bindings = make([]*binding, len(childRows))
			for i, r := range childRows {
				bindings[i] = &binding{qids: []int{next.ID}, rows: [][]sqltypes.Value{r}}
			}
		} else if len(hashPreds) > 0 {
			bindings, err = ev.hashJoin(bindings, next, childRows, preds, hashPreds, ectx)
			if err != nil {
				return nil, err
			}
			for _, pi := range hashPreds {
				usedPred[pi] = true
			}
		} else {
			// Nested-loop cross join.
			out := make([]*binding, 0, len(bindings)*max(1, len(childRows)))
			for _, bd := range bindings {
				for _, r := range childRows {
					if err := ev.checkpoint(1); err != nil {
						return nil, err
					}
					nb := &binding{
						qids: append(append([]int(nil), bd.qids...), next.ID),
						rows: append(append([][]sqltypes.Value(nil), bd.rows...), r),
					}
					out = append(out, nb)
				}
			}
			bindings = out
		}
		joined[next.ID] = true

		// Apply any now-evaluable unused predicates to prune early.
		bindings, err = ev.filter(bindings, preds, usedPred, joined, ectx, false)
		if err != nil {
			return nil, err
		}
	}

	// Apply all remaining predicates (including those with no quantifier refs).
	var err error
	bindings, err = ev.filter(bindings, preds, usedPred, joined, ectx, true)
	if err != nil {
		return nil, err
	}

	out := make([][]sqltypes.Value, 0, len(bindings))
	for _, bd := range bindings {
		if err := ev.checkpoint(1); err != nil {
			return nil, err
		}
		row := make([]sqltypes.Value, len(b.Cols))
		for i, c := range b.Cols {
			v, err := ectx.evalScalar(c.Expr, bd)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}

	if b.Distinct {
		out = dedupeRows(out)
	}
	return out, nil
}

// hashablePreds returns indices of unused equality predicates that connect
// candidate quantifier cand to the joined prefix: one side references only
// cand, the other only joined quantifiers (or scalars/constants).
func (ev *evaluator) hashablePreds(preds []qgm.Expr, used []bool, joined map[int]bool, cand int, scalars map[int]sqltypes.Value) []int {
	var out []int
	for i, p := range preds {
		if used[i] {
			continue
		}
		bin, ok := p.(*qgm.Bin)
		if !ok || bin.Op != "=" {
			continue
		}
		lq := sideQuants(bin.L, scalars)
		rq := sideQuants(bin.R, scalars)
		if lq == nil || rq == nil {
			continue
		}
		onlyCand := func(qs map[int]bool) bool {
			return len(qs) == 1 && qs[cand]
		}
		allJoined := func(qs map[int]bool) bool {
			for q := range qs {
				if !joined[q] {
					return false
				}
			}
			return len(qs) > 0
		}
		if (onlyCand(lq) && allJoined(rq)) || (onlyCand(rq) && allJoined(lq)) {
			out = append(out, i)
		}
	}
	return out
}

// sideQuants collects the ForEach quantifier IDs referenced by e; scalar
// quantifiers are treated as constants. Returns nil if e contains an
// aggregate (not evaluable here).
func sideQuants(e qgm.Expr, scalars map[int]sqltypes.Value) map[int]bool {
	qs := map[int]bool{}
	bad := false
	qgm.WalkExpr(e, func(x qgm.Expr) bool {
		switch t := x.(type) {
		case *qgm.ColRef:
			if t.Q == nil {
				bad = true
				return false
			}
			if _, isScalar := scalars[t.Q.ID]; !isScalar {
				qs[t.Q.ID] = true
			}
		case *qgm.Agg:
			bad = true
			return false
		}
		return true
	})
	if bad {
		return nil
	}
	return qs
}

func (ev *evaluator) hashJoin(bindings []*binding, next *qgm.Quantifier, childRows [][]sqltypes.Value, preds []qgm.Expr, hashPreds []int, ectx *exprCtx) ([]*binding, error) {
	// Split each hash predicate into (prefix expr, child expr).
	type keyPair struct{ prefix, child qgm.Expr }
	pairs := make([]keyPair, 0, len(hashPreds))
	for _, pi := range hashPreds {
		bin := preds[pi].(*qgm.Bin)
		lq := sideQuants(bin.L, ectx.scalars)
		if len(lq) == 1 && lq[next.ID] {
			pairs = append(pairs, keyPair{prefix: bin.R, child: bin.L})
		} else {
			pairs = append(pairs, keyPair{prefix: bin.L, child: bin.R})
		}
	}

	// Build hash table on child rows.
	table := make(map[string][][]sqltypes.Value, len(childRows))
	childBd := &binding{qids: []int{next.ID}, rows: [][]sqltypes.Value{nil}}
	for _, r := range childRows {
		childBd.rows[0] = r
		var sb strings.Builder
		null := false
		for _, kp := range pairs {
			v, err := ectx.evalScalar(kp.child, childBd)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		if null {
			continue // NULL join keys never match
		}
		k := sb.String()
		table[k] = append(table[k], r)
	}

	out := make([]*binding, 0, len(bindings))
	for _, bd := range bindings {
		var sb strings.Builder
		null := false
		for _, kp := range pairs {
			v, err := ectx.evalScalar(kp.prefix, bd)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		if null {
			continue
		}
		for _, r := range table[sb.String()] {
			if err := ev.checkpoint(1); err != nil {
				return nil, err
			}
			nb := &binding{
				qids: append(append([]int(nil), bd.qids...), next.ID),
				rows: append(append([][]sqltypes.Value(nil), bd.rows...), r),
			}
			out = append(out, nb)
		}
	}
	return out, nil
}

// filter applies predicates whose quantifiers are all joined. With final set,
// all unused predicates must be evaluable and are applied.
func (ev *evaluator) filter(bindings []*binding, preds []qgm.Expr, used []bool, joined map[int]bool, ectx *exprCtx, final bool) ([]*binding, error) {
	var apply []int
	for i, p := range preds {
		if used[i] {
			continue
		}
		qs := sideQuants(p, ectx.scalars)
		evaluable := qs != nil
		if evaluable {
			for q := range qs {
				if !joined[q] {
					evaluable = false
					break
				}
			}
		}
		if evaluable {
			apply = append(apply, i)
		} else if final {
			return nil, fmt.Errorf("exec: predicate %s not evaluable", p.String())
		}
	}
	if len(apply) == 0 {
		return bindings, nil
	}
	out := bindings[:0]
	for _, bd := range bindings {
		keep := true
		for _, pi := range apply {
			t, err := ectx.evalPred(preds[pi], bd)
			if err != nil {
				return nil, err
			}
			if t != sqltypes.True {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, bd)
		}
	}
	for _, pi := range apply {
		used[pi] = true
	}
	return out, nil
}

func dedupeRows(rows [][]sqltypes.Value) [][]sqltypes.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		var sb strings.Builder
		for _, v := range r {
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// SortRows orders rows lexicographically (NULL first) for deterministic
// output; used by result comparison and experiment printing.
func SortRows(rows [][]sqltypes.Value) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			an, bn := a[k].IsNull(), b[k].IsNull()
			if an != bn {
				return an
			}
			if an {
				continue
			}
			c, err := sqltypes.Compare(a[k], b[k])
			if err != nil {
				ak, bk := a[k].GroupKey(), b[k].GroupKey()
				if ak != bk {
					return ak < bk
				}
				continue
			}
			if c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
}

// EqualResults compares two results as multisets of rows (column order must
// agree; row order is ignored). Floats compare with a small relative
// tolerance: re-aggregation legitimately reorders floating-point summation.
// It returns a description of the first difference, or "" when equal.
func EqualResults(a, b *Result) string {
	if len(a.Cols) != len(b.Cols) {
		return fmt.Sprintf("column count differs: %d vs %d", len(a.Cols), len(b.Cols))
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("row count differs: %d vs %d", len(a.Rows), len(b.Rows))
	}
	ra := append([][]sqltypes.Value(nil), a.Rows...)
	rb := append([][]sqltypes.Value(nil), b.Rows...)
	SortRows(ra)
	SortRows(rb)
	for i := range ra {
		if len(ra[i]) != len(rb[i]) {
			return fmt.Sprintf("row %d: arity differs", i)
		}
		for j := range ra[i] {
			if !valuesClose(ra[i][j], rb[i][j]) {
				return fmt.Sprintf("row %d col %d: %v vs %v", i, j, ra[i], rb[i])
			}
		}
	}
	return ""
}

// valuesClose is value equality with relative float tolerance.
func valuesClose(x, y sqltypes.Value) bool {
	if x.IsNull() || y.IsNull() {
		return x.IsNull() && y.IsNull()
	}
	if x.Kind() == sqltypes.KindFloat || y.Kind() == sqltypes.KindFloat {
		if !x.IsNumeric() || !y.IsNumeric() {
			return false
		}
		fx, fy := x.Float(), y.Float()
		diff := fx - fy
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if ax := abs(fx); ax > scale {
			scale = ax
		}
		if ay := abs(fy); ay > scale {
			scale = ay
		}
		return diff <= 1e-9*scale
	}
	return sqltypes.Identical(x, y)
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
