// Package exec interprets QGM graphs over an in-memory storage.Store. It
// exists to (a) verify that every rewrite the matching algorithm produces is
// result-identical to the original query, and (b) measure the latency
// improvements that motivate Automatic Summary Tables.
//
// The interpreter evaluates boxes bottom-up with per-box memoization (QGM is
// a DAG — a shared base table evaluates once). SELECT boxes join their
// ForEach children — using hash joins when equality predicates connect the
// next child to the already-joined prefix, falling back to nested loops —
// then apply residual predicates under SQL three-valued logic and compute the
// output expressions. GROUP BY boxes evaluate each grouping set of their
// canonicalized supergroup (paper §5: a cube query is the union of its
// cuboids, NULL-padding the grouped-out columns).
//
// Row loops fan out across Config.Parallelism workers (default GOMAXPROCS):
// the driving quantifier's scan+filter, per-binding predicate filters, output
// expression evaluation, and partitioned aggregation all partition their
// input into contiguous chunks whose results are concatenated in chunk order,
// so the parallel path produces the same rows in the same order as the serial
// path (floating-point SUM may re-associate; see EqualResults tolerance).
package exec

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Observability counter and histogram names reported by the engine. They are
// constant strings so instrumented hot paths stay allocation-free when the
// observer is disabled; the full taxonomy is documented in DESIGN.md §9.
const (
	CtrRuns            = "exec.runs"
	CtrRowsScanned     = "exec.rows.scanned"
	CtrRowsEmitted     = "exec.rows.emitted"
	CtrParallelOps     = "exec.parallel.ops"
	CtrParallelWorkers = "exec.parallel.workers"
	HistRun            = "exec.run"
)

// Result is the output of running a graph.
type Result struct {
	Cols []string
	Rows [][]sqltypes.Value
	// Mode reports how the run evaluated: ModeVectorized when at least one
	// box ran on the vectorized path, ModeInterpreted under Config.Interpret,
	// ModeCompiledRow otherwise. EXPLAIN surfaces it.
	Mode string
}

// Engine runs QGM graphs against a store.
type Engine struct {
	store *storage.Store
	obsv  *obs.Observer // nil = observability disabled (the common case)
}

// NewEngine returns an engine over the store.
func NewEngine(store *storage.Store) *Engine {
	return &Engine{store: store}
}

// Store returns the storage the engine runs against.
func (e *Engine) Store() *storage.Store { return e.store }

// SetObserver attaches an observer; nil detaches. Not safe to call
// concurrently with runs.
func (e *Engine) SetObserver(o *obs.Observer) { e.obsv = o }

// Run evaluates the graph with no budget and returns its result.
func (e *Engine) Run(g *qgm.Graph) (*Result, error) {
	return e.RunCtx(context.Background(), g, Config{})
}

// runSpan opens the "exec" span for one run: nested under the span carried by
// ctx when there is one, a root span of the engine's own observer otherwise.
// Disabled on both ends it is the zero span and costs nothing.
func (e *Engine) runSpan(ctx context.Context) obs.Span {
	if parent := obs.SpanFromContext(ctx); parent.Enabled() {
		return parent.Child("exec")
	}
	return e.obsv.Start("exec")
}

// RunCtx evaluates the graph under a context and a resource budget. It
// returns an error wrapping ErrCanceled when the context (or Config.Timeout)
// expires mid-run and one wrapping ErrBudgetExceeded when the run
// materializes more than Config.MaxRows rows.
func (e *Engine) RunCtx(ctx context.Context, g *qgm.Graph, lim Config) (*Result, error) {
	span := e.runSpan(ctx)
	defer span.End()
	e.obsv.Add(CtrRuns, 1)
	began := e.obsv.Now()
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	bud := &runBudget{ctx: ctx, maxRows: int64(lim.MaxRows)}
	ev := &evaluator{
		store:  e.store,
		memo:   map[int][][]sqltypes.Value{},
		bud:    bud,
		chg:    charger{b: bud},
		par:    lim.Parallelism,
		interp: lim.Interpret,
		vec:    !lim.Interpret && lim.Vectorize == VecAuto,
		obsv:   e.obsv,
	}
	rows, err := ev.evalBox(g.Root)
	if err != nil {
		return nil, err
	}
	if err := ev.chg.flush(); err != nil {
		return nil, err
	}
	e.obsv.Add(CtrRowsEmitted, int64(len(rows)))
	e.obsv.ObserveSince(HistRun, began)
	// A base-table root would hand the caller the table's live row slice;
	// consumers sort Result.Rows in place, which must never reorder storage.
	if g.Root.Kind == qgm.BaseTableBox {
		rows = append([][]sqltypes.Value(nil), rows...)
	}
	cols := make([]string, len(g.Root.Cols))
	for i, c := range g.Root.Cols {
		cols[i] = c.Name
	}
	mode := ModeCompiledRow
	switch {
	case ev.usedVector:
		mode = ModeVectorized
	case lim.Interpret:
		mode = ModeInterpreted
	}
	return &Result{Cols: cols, Rows: rows, Mode: mode}, nil
}

// MustRun is Run that panics on error; for tests.
func (e *Engine) MustRun(g *qgm.Graph) *Result {
	r, err := e.Run(g)
	if err != nil {
		panic(err)
	}
	return r
}

type evaluator struct {
	store *storage.Store
	memo  map[int][][]sqltypes.Value

	bud    *runBudget
	chg    charger // the main goroutine's charger; workers get their own
	par    int     // Config.Parallelism (0 = GOMAXPROCS)
	interp bool    // Config.Interpret: skip kernel compilation
	vec    bool    // Config.Vectorize == VecAuto (and not interpreting)
	obsv   *obs.Observer

	// usedVector records that at least one box ran on the vectorized path
	// this run (set on the main goroutine only; reported via Result.Mode).
	usedVector bool
}

// checkpoint charges n materialized rows against the shared budget and
// periodically polls the context (main-goroutine loops; workers use their own
// charger).
func (ev *evaluator) checkpoint(n int) error {
	return ev.chg.checkpoint(n)
}

func (ev *evaluator) evalBox(b *qgm.Box) ([][]sqltypes.Value, error) {
	if rows, ok := ev.memo[b.ID]; ok {
		return rows, nil
	}
	if err := ev.chg.flush(); err != nil {
		return nil, err
	}
	var rows [][]sqltypes.Value
	var err error
	switch b.Kind {
	case qgm.BaseTableBox:
		rows, err = ev.store.Scan(b.Table.Name)
		if err == nil {
			ev.obsv.Add(CtrRowsScanned, int64(len(rows)))
			err = ev.checkpoint(len(rows))
		}
		if err == nil {
			// Poll unconditionally after a scan: a slow storage layer must
			// surface the deadline here, not rows later in a join loop.
			err = ev.chg.flush()
		}
	case qgm.SelectBox:
		var handled bool
		if ev.vec {
			rows, handled, err = ev.evalSelectVec(b)
		}
		if !handled && err == nil {
			rows, err = ev.evalSelect(b)
		}
	case qgm.GroupByBox:
		var handled bool
		if ev.vec {
			rows, handled, err = ev.evalGroupByVec(b)
		}
		if !handled && err == nil {
			rows, err = ev.evalGroupBy(b)
		}
	default:
		err = fmt.Errorf("exec: unsupported box kind %v", b.Kind)
	}
	if err != nil {
		return nil, err
	}
	ev.memo[b.ID] = rows
	return rows, nil
}

// binding is the joined tuple so far: the current row of each joined ForEach
// quantifier, indexed by the join slot the quantifier was assigned when it
// entered the join (exprCtx maps quantifier IDs to slots, replacing the old
// per-lookup linear scan).
type binding [][]sqltypes.Value

func (ev *evaluator) evalSelect(b *qgm.Box) ([][]sqltypes.Value, error) {
	var forEach []*qgm.Quantifier
	scalars := map[int]sqltypes.Value{}
	for _, q := range b.Quantifiers {
		switch q.Kind {
		case qgm.ForEach:
			forEach = append(forEach, q)
		case qgm.Scalar:
			rows, err := ev.evalBox(q.Box)
			if err != nil {
				return nil, err
			}
			switch len(rows) {
			case 0:
				scalars[q.ID] = sqltypes.Null
			case 1:
				scalars[q.ID] = rows[0][0]
			default:
				return nil, fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
			}
		}
	}

	ectx := &exprCtx{scalars: scalars}

	preds := b.Preds
	usedPred := make([]bool, len(preds))

	// Join children left to right; before each step, pick an unjoined child
	// connected to the current prefix by an equality predicate so it can be
	// hash-joined.
	var bindings []binding
	joined := map[int]bool{}
	if len(forEach) == 0 {
		bindings = []binding{{}}
	}

	remaining := append([]*qgm.Quantifier(nil), forEach...)
	for len(remaining) > 0 {
		// Choose next child: if nothing joined yet take the first; otherwise
		// prefer one with an available equality predicate to the prefix.
		nextIdx := 0
		var hashPreds []int
		if len(joined) > 0 {
			for ci, cand := range remaining {
				hp := hashablePreds(preds, usedPred, joined, cand.ID, scalars)
				if len(hp) > 0 {
					nextIdx = ci
					hashPreds = hp
					break
				}
			}
		}
		next := remaining[nextIdx]
		remaining = append(remaining[:nextIdx], remaining[nextIdx+1:]...)

		childRows, err := ev.evalBox(next.Box)
		if err != nil {
			return nil, err
		}
		slot := len(joined)
		ectx.setSlot(next.ID, slot)

		if len(joined) == 0 {
			bindings, err = ev.driveScan(next, childRows, preds, usedPred, ectx)
			if err != nil {
				return nil, err
			}
		} else if len(hashPreds) > 0 {
			bindings, err = ev.hashJoin(bindings, next, slot, childRows, preds, hashPreds, ectx)
			if err != nil {
				return nil, err
			}
			for _, pi := range hashPreds {
				usedPred[pi] = true
			}
		} else {
			// Nested-loop cross join.
			out := make([]binding, 0, len(bindings)*max(1, len(childRows)))
			for _, bd := range bindings {
				for _, r := range childRows {
					if err := ev.checkpoint(1); err != nil {
						return nil, err
					}
					out = append(out, extend(bd, r))
				}
			}
			bindings = out
		}
		joined[next.ID] = true

		// Apply any now-evaluable unused predicates to prune early.
		bindings, err = ev.filter(bindings, preds, usedPred, joined, ectx, false)
		if err != nil {
			return nil, err
		}
	}

	// Apply all remaining predicates (including those with no quantifier refs).
	var err error
	bindings, err = ev.filter(bindings, preds, usedPred, joined, ectx, true)
	if err != nil {
		return nil, err
	}

	// Compute output expressions, partitioned across workers; each worker
	// writes a disjoint index range, so order is exactly the serial order.
	// The expressions are compiled to kernels once — every quantifier has its
	// slot by now — and each worker calls the shared read-only closures.
	colKs := make([]scalarKernel, len(b.Cols))
	for ci, c := range b.Cols {
		colKs[ci] = ev.scalarKernel(ectx, c.Expr)
	}
	out := make([][]sqltypes.Value, len(bindings))
	err = ev.parallelChunks(len(bindings), ev.workersFor(len(bindings)),
		func(w, lo, hi int, chg *charger) error {
			// One backing array per worker range instead of one allocation
			// per output row; the capacity cap keeps rows independent.
			vals := make([]sqltypes.Value, (hi-lo)*len(colKs))
			for i := lo; i < hi; i++ {
				if err := chg.checkpoint(1); err != nil {
					return err
				}
				row := vals[:len(colKs):len(colKs)]
				vals = vals[len(colKs):]
				for ci, k := range colKs {
					v, err := k(bindings[i])
					if err != nil {
						return err
					}
					row[ci] = v
				}
				out[i] = row
			}
			return nil
		})
	if err != nil {
		return nil, err
	}

	if b.Distinct {
		out = dedupeRows(out)
	}
	return out, nil
}

// extend returns a new binding with r appended at the next slot.
func extend(bd binding, r []sqltypes.Value) binding {
	nb := make(binding, len(bd)+1)
	copy(nb, bd)
	nb[len(bd)] = r
	return nb
}

// driveScan builds the initial binding set from the first (driving)
// quantifier's rows, applying any predicates evaluable over it alone, with
// the scan+filter partitioned across workers. Chunks are concatenated in
// order, so the binding order matches the serial path.
func (ev *evaluator) driveScan(next *qgm.Quantifier, childRows [][]sqltypes.Value, preds []qgm.Expr, usedPred []bool, ectx *exprCtx) ([]binding, error) {
	apply, err := applicablePreds(preds, usedPred, map[int]bool{next.ID: true}, ectx, false)
	if err != nil {
		return nil, err
	}
	applyKs := ev.predKernelsFor(ectx, preds, apply)
	workers := ev.workersFor(len(childRows))
	parts := make([][]binding, workers)
	err = ev.parallelChunks(len(childRows), workers, func(w, lo, hi int, chg *charger) error {
		out := make([]binding, 0, hi-lo)
		arena := bindArena{width: 1}
		for _, r := range childRows[lo:hi] {
			if err := chg.checkpoint(0); err != nil {
				return err
			}
			bd := arena.next()
			bd[0] = r
			keep := true
			for _, k := range applyKs {
				t, err := k(bd)
				if err != nil {
					return err
				}
				if t != sqltypes.True {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, bd)
			}
		}
		parts[w] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, pi := range apply {
		usedPred[pi] = true
	}
	if workers == 1 {
		return parts[0], nil
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	bindings := make([]binding, 0, total)
	for _, p := range parts {
		bindings = append(bindings, p...)
	}
	return bindings, nil
}

// hashablePreds returns indices of unused equality predicates that connect
// candidate quantifier cand to the joined prefix: one side references only
// cand, the other only joined quantifiers (or scalars/constants).
func hashablePreds(preds []qgm.Expr, used []bool, joined map[int]bool, cand int, scalars map[int]sqltypes.Value) []int {
	var out []int
	for i, p := range preds {
		if used[i] {
			continue
		}
		bin, ok := p.(*qgm.Bin)
		if !ok || bin.Op != "=" {
			continue
		}
		lq := sideQuants(bin.L, scalars)
		rq := sideQuants(bin.R, scalars)
		if lq == nil || rq == nil {
			continue
		}
		onlyCand := func(qs map[int]bool) bool {
			return len(qs) == 1 && qs[cand]
		}
		allJoined := func(qs map[int]bool) bool {
			for q := range qs {
				if !joined[q] {
					return false
				}
			}
			return len(qs) > 0
		}
		if (onlyCand(lq) && allJoined(rq)) || (onlyCand(rq) && allJoined(lq)) {
			out = append(out, i)
		}
	}
	return out
}

// sideQuants collects the ForEach quantifier IDs referenced by e; scalar
// quantifiers are treated as constants. Returns nil if e contains an
// aggregate (not evaluable here).
func sideQuants(e qgm.Expr, scalars map[int]sqltypes.Value) map[int]bool {
	qs := map[int]bool{}
	bad := false
	qgm.WalkExpr(e, func(x qgm.Expr) bool {
		switch t := x.(type) {
		case *qgm.ColRef:
			if t.Q == nil {
				bad = true
				return false
			}
			if _, isScalar := scalars[t.Q.ID]; !isScalar {
				qs[t.Q.ID] = true
			}
		case *qgm.Agg:
			bad = true
			return false
		}
		return true
	})
	if bad {
		return nil
	}
	return qs
}

func (ev *evaluator) hashJoin(bindings []binding, next *qgm.Quantifier, slot int, childRows [][]sqltypes.Value, preds []qgm.Expr, hashPreds []int, ectx *exprCtx) ([]binding, error) {
	// Split each hash predicate into (prefix expr, child expr).
	type keyPair struct{ prefix, child qgm.Expr }
	pairs := make([]keyPair, 0, len(hashPreds))
	for _, pi := range hashPreds {
		bin := preds[pi].(*qgm.Bin)
		lq := sideQuants(bin.L, ectx.scalars)
		if len(lq) == 1 && lq[next.ID] {
			pairs = append(pairs, keyPair{prefix: bin.R, child: bin.L})
		} else {
			pairs = append(pairs, keyPair{prefix: bin.L, child: bin.R})
		}
	}

	// Compile both sides' key expressions once (the child's slot was assigned
	// just before this call; prefix expressions only reference joined
	// quantifiers).
	childKs := make([]scalarKernel, len(pairs))
	prefixKs := make([]scalarKernel, len(pairs))
	for i, kp := range pairs {
		childKs[i] = ev.scalarKernel(ectx, kp.child)
		prefixKs[i] = ev.scalarKernel(ectx, kp.prefix)
	}

	// Build hash table on child rows, keyed through a reusable scratch buffer
	// (a key string is only allocated when it enters the table). Keys use the
	// binary encoding — build and probe sides match, and its equivalence
	// classes are the GroupKey classes, which are exactly `=` equality.
	table := make(map[string][][]sqltypes.Value, len(childRows))
	childBd := make(binding, slot+1)
	var buf []byte
	for _, r := range childRows {
		childBd[slot] = r
		buf = buf[:0]
		null := false
		for _, k := range childKs {
			v, err := k(childBd)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			buf = sqltypes.AppendBinKeyValue(buf, v)
			buf = append(buf, 0)
		}
		if null {
			continue // NULL join keys never match
		}
		table[string(buf)] = append(table[string(buf)], r)
	}

	arena := bindArena{width: slot + 1}
	out := make([]binding, 0, len(bindings))
	for _, bd := range bindings {
		buf = buf[:0]
		null := false
		for _, k := range prefixKs {
			v, err := k(bd)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			buf = sqltypes.AppendBinKeyValue(buf, v)
			buf = append(buf, 0)
		}
		if null {
			continue
		}
		for _, r := range table[string(buf)] {
			if err := ev.checkpoint(1); err != nil {
				return nil, err
			}
			nb := arena.next()
			copy(nb, bd)
			nb[slot] = r
			out = append(out, nb)
		}
	}
	return out, nil
}

// bindArena hands out fixed-width bindings carved from block allocations,
// replacing one small slice allocation per join output row with one per
// arenaBlock rows. Carved bindings are capacity-capped, so growing one can
// never overwrite a neighbour.
type bindArena struct {
	width int
	free  [][]sqltypes.Value
}

const arenaBlock = 1024

func (a *bindArena) next() binding {
	if len(a.free) < a.width {
		a.free = make([][]sqltypes.Value, a.width*arenaBlock)
	}
	b := binding(a.free[:a.width:a.width])
	a.free = a.free[a.width:]
	return b
}

// applicablePreds returns the indices of unused predicates whose quantifier
// references are all joined. With final set, every unused predicate must be
// evaluable.
func applicablePreds(preds []qgm.Expr, used []bool, joined map[int]bool, ectx *exprCtx, final bool) ([]int, error) {
	var apply []int
	for i, p := range preds {
		if used[i] {
			continue
		}
		qs := sideQuants(p, ectx.scalars)
		evaluable := qs != nil
		if evaluable {
			for q := range qs {
				if !joined[q] {
					evaluable = false
					break
				}
			}
		}
		if evaluable {
			apply = append(apply, i)
		} else if final {
			return nil, fmt.Errorf("exec: predicate %s not evaluable", p.String())
		}
	}
	return apply, nil
}

// filter applies predicates whose quantifiers are all joined, partitioning
// large binding sets across workers. With final set, all unused predicates
// must be evaluable and are applied.
func (ev *evaluator) filter(bindings []binding, preds []qgm.Expr, used []bool, joined map[int]bool, ectx *exprCtx, final bool) ([]binding, error) {
	apply, err := applicablePreds(preds, used, joined, ectx, final)
	if err != nil {
		return nil, err
	}
	if len(apply) == 0 {
		return bindings, nil
	}
	applyKs := ev.predKernelsFor(ectx, preds, apply)
	workers := ev.workersFor(len(bindings))
	parts := make([][]binding, workers)
	err = ev.parallelChunks(len(bindings), workers, func(w, lo, hi int, chg *charger) error {
		chunk := bindings[lo:hi]
		out := chunk[:0] // compact in place within the disjoint chunk
		for _, bd := range chunk {
			if err := chg.checkpoint(0); err != nil {
				return err
			}
			keep := true
			for _, k := range applyKs {
				t, err := k(bd)
				if err != nil {
					return err
				}
				if t != sqltypes.True {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, bd)
			}
		}
		parts[w] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, pi := range apply {
		used[pi] = true
	}
	out := bindings[:0]
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

func dedupeRows(rows [][]sqltypes.Value) [][]sqltypes.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var buf []byte
	for _, r := range rows {
		buf = buf[:0]
		for _, v := range r {
			buf = v.AppendGroupKey(buf)
			buf = append(buf, 0)
		}
		if !seen[string(buf)] {
			seen[string(buf)] = true
			out = append(out, r)
		}
	}
	return out
}

// SortRows orders rows lexicographically (NULL first) for deterministic
// output; used by result comparison and experiment printing.
func SortRows(rows [][]sqltypes.Value) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			an, bn := a[k].IsNull(), b[k].IsNull()
			if an != bn {
				return an
			}
			if an {
				continue
			}
			c, err := sqltypes.Compare(a[k], b[k])
			if err != nil {
				ak, bk := a[k].GroupKey(), b[k].GroupKey()
				if ak != bk {
					return ak < bk
				}
				continue
			}
			if c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
}

// EqualResults compares two results as multisets of rows (column order must
// agree; row order is ignored). Floats compare with a small relative
// tolerance: re-aggregation legitimately reorders floating-point summation.
// It returns a description of the first difference, or "" when equal.
func EqualResults(a, b *Result) string {
	if len(a.Cols) != len(b.Cols) {
		return fmt.Sprintf("column count differs: %d vs %d", len(a.Cols), len(b.Cols))
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("row count differs: %d vs %d", len(a.Rows), len(b.Rows))
	}
	ra := append([][]sqltypes.Value(nil), a.Rows...)
	rb := append([][]sqltypes.Value(nil), b.Rows...)
	SortRows(ra)
	SortRows(rb)
	for i := range ra {
		if len(ra[i]) != len(rb[i]) {
			return fmt.Sprintf("row %d: arity differs", i)
		}
		for j := range ra[i] {
			if !valuesClose(ra[i][j], rb[i][j]) {
				return fmt.Sprintf("row %d col %d: %v vs %v", i, j, ra[i], rb[i])
			}
		}
	}
	return ""
}

// valuesClose is value equality with relative float tolerance.
func valuesClose(x, y sqltypes.Value) bool {
	if x.IsNull() || y.IsNull() {
		return x.IsNull() && y.IsNull()
	}
	if x.Kind() == sqltypes.KindFloat || y.Kind() == sqltypes.KindFloat {
		if !x.IsNumeric() || !y.IsNumeric() {
			return false
		}
		fx, fy := x.Float(), y.Float()
		diff := fx - fy
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if ax := abs(fx); ax > scale {
			scale = ax
		}
		if ay := abs(fy); ay > scale {
			scale = ay
		}
		return diff <= 1e-9*scale
	}
	return sqltypes.Identical(x, y)
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
