package exec

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/qgm"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// aliasFixture loads a tiny table and returns a graph whose root IS the base
// table box — the shape where Result.Rows would alias the store's live row
// slice if RunCtx didn't copy on return.
func aliasFixture(t *testing.T) (*storage.Store, *qgm.Graph) {
	t.Helper()
	cat := catalog.New()
	meta := &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "a", Type: sqltypes.KindInt},
			{Name: "b", Type: sqltypes.KindString},
		},
	}
	cat.MustAddTable(meta)
	store := storage.NewStore()
	td := store.Create(meta)
	for i := 5; i >= 1; i-- { // deliberately not sorted
		td.MustInsert(sqltypes.NewInt(int64(i)), sqltypes.NewString("r"))
	}
	g := qgm.NewGraph(cat)
	g.Root = g.BaseTableBox(meta)
	return store, g
}

// TestResultDoesNotAliasStore: consumers routinely SortRows(res.Rows) in
// place and even overwrite cells (E17 does, deliberately); neither may ever
// reach the stored table. This is the audit test for the memoization aliasing
// fix — before the copy-on-return in RunCtx, sorting a base-table-root result
// silently reordered storage for every later reader.
func TestResultDoesNotAliasStore(t *testing.T) {
	store, g := aliasFixture(t)
	res, err := NewEngine(store).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(res.Rows))
	}

	// Mutate the result the way consumers do: reorder and clobber.
	SortRows(res.Rows)
	res.Rows[0] = []sqltypes.Value{sqltypes.NewInt(999), sqltypes.NewString("zap")}

	stored, err := store.Scan("t")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{5, 4, 3, 2, 1} {
		if got := stored[i][0].Int(); got != want {
			t.Fatalf("store row %d: got %d, want %d — Result.Rows aliases the store", i, got, want)
		}
	}
}

// TestMemoizedBoxSharedAcrossConsumers: a box referenced by two quantifiers
// (the QGM DAG shape) evaluates once and both consumers read the memoized
// rows; the run must still produce correct results for both, and deduping
// one consumer's output must not disturb the store.
func TestMemoizedBoxSharedAcrossConsumers(t *testing.T) {
	store, _ := aliasFixture(t)
	cat := catalog.New()
	meta := store.MustTable("t").Meta
	cat.MustAddTable(meta)

	// Self-join: select s.a from t s, t r where s.a = r.a — both quantifiers
	// share one memoized base box.
	g, err := qgm.BuildSQL(`select s.a as a from t s, t r where s.a = r.a`, cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(store).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("self-join over shared memo: want 5 rows, got %d", len(res.Rows))
	}
	SortRows(res.Rows)
	stored, _ := store.Scan("t")
	if stored[0][0].Int() != 5 {
		t.Fatal("sorting a join result must not reorder the store")
	}
}
