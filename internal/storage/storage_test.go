package storage

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

func meta() *catalog.Table {
	return &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "a", Type: sqltypes.KindInt},
			{Name: "b", Type: sqltypes.KindString},
		},
	}
}

func TestCreateInsertLookup(t *testing.T) {
	s := NewStore()
	td := s.Create(meta())
	td.MustInsert(sqltypes.NewInt(1), sqltypes.NewString("x"))
	td.MustInsert(sqltypes.NewInt(2), sqltypes.NewString("y"))
	got, ok := s.Table("T") // case-insensitive
	if !ok || got.Cardinality() != 2 {
		t.Fatalf("lookup: ok=%v card=%d", ok, got.Cardinality())
	}
}

func TestInsertArityCheck(t *testing.T) {
	s := NewStore()
	td := s.Create(meta())
	if err := td.Insert([]sqltypes.Value{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestPutReplaces(t *testing.T) {
	s := NewStore()
	s.Create(meta())
	rows := [][]sqltypes.Value{{sqltypes.NewInt(9), sqltypes.NewString("z")}}
	s.Put(meta(), rows)
	if s.MustTable("t").Cardinality() != 1 {
		t.Fatal("Put did not replace")
	}
}

func TestDropAndMustTablePanic(t *testing.T) {
	s := NewStore()
	s.Create(meta())
	s.Drop("t")
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable on missing table should panic")
		}
	}()
	s.MustTable("t")
}
