package storage

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

func meta() *catalog.Table {
	return &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "a", Type: sqltypes.KindInt},
			{Name: "b", Type: sqltypes.KindString},
		},
	}
}

func TestCreateInsertLookup(t *testing.T) {
	s := NewStore()
	td := s.Create(meta())
	td.MustInsert(sqltypes.NewInt(1), sqltypes.NewString("x"))
	td.MustInsert(sqltypes.NewInt(2), sqltypes.NewString("y"))
	got, ok := s.Table("T") // case-insensitive
	if !ok || got.Cardinality() != 2 {
		t.Fatalf("lookup: ok=%v card=%d", ok, got.Cardinality())
	}
}

func TestInsertArityCheck(t *testing.T) {
	s := NewStore()
	td := s.Create(meta())
	if err := td.Insert([]sqltypes.Value{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestPutReplaces(t *testing.T) {
	s := NewStore()
	s.Create(meta())
	rows := [][]sqltypes.Value{{sqltypes.NewInt(9), sqltypes.NewString("z")}}
	s.Put(meta(), rows)
	if s.MustTable("t").Cardinality() != 1 {
		t.Fatal("Put did not replace")
	}
}

func TestDropAndMustTablePanic(t *testing.T) {
	s := NewStore()
	s.Create(meta())
	s.Drop("t")
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable on missing table should panic")
		}
	}()
	s.MustTable("t")
}

// TestChunkRowRoundTrip pins the dual representation: rows loaded through
// Insert land in column chunks, and both the row-view adapter and the chunk
// snapshot reproduce them exactly, across chunk boundaries.
func TestChunkRowRoundTrip(t *testing.T) {
	s := NewStore()
	td := s.Create(meta())
	n := ChunkRows*2 + 37
	for i := 0; i < n; i++ {
		b := sqltypes.NewString(string(rune('a' + i%26)))
		if i%7 == 0 {
			b = sqltypes.Null
		}
		td.MustInsert(sqltypes.NewInt(int64(i)), b)
	}
	rows := td.Snapshot()
	if len(rows) != n {
		t.Fatalf("row view has %d rows, want %d", len(rows), n)
	}
	chunks, cn := td.SnapshotChunks()
	if cn != n || len(chunks) != 3 {
		t.Fatalf("chunk snapshot: n=%d chunks=%d", cn, len(chunks))
	}
	ri := 0
	for _, c := range chunks {
		for i := 0; i < c.N; i++ {
			for j := range c.Cols {
				got, want := c.Cols[j].Value(i), rows[ri][j]
				if got.Kind() != want.Kind() || got.String() != want.String() {
					t.Fatalf("row %d col %d: chunk %v vs row %v", ri, j, got, want)
				}
			}
			ri++
		}
	}
}

// TestSnapshotStability pins the copy-on-write contract for both views:
// snapshots taken before appends never see them.
func TestSnapshotStability(t *testing.T) {
	s := NewStore()
	td := s.Create(meta())
	td.MustInsert(sqltypes.NewInt(1), sqltypes.NewString("x"))
	rows := td.Snapshot()
	chunks, cn := td.SnapshotChunks()
	td.MustInsert(sqltypes.NewInt(2), sqltypes.Null)
	if len(rows) != 1 || cn != 1 || chunks[0].N != 1 {
		t.Fatalf("snapshots moved: rows=%d chunk n=%d", len(rows), chunks[0].N)
	}
	if chunks[0].Cols[1].IsNull(0) {
		t.Fatal("null bit from a later append leaked into the frozen chunk")
	}
	rows2 := td.Snapshot()
	c2, n2 := td.SnapshotChunks()
	if len(rows2) != 2 || n2 != 2 || c2[0].N != 2 {
		t.Fatalf("fresh snapshots stale: rows=%d n=%d", len(rows2), n2)
	}
}

// TestLookupFoldCases pins the key-normalization invariant: writers register
// lowercase keys once and every lookup spelling folds to them.
func TestLookupFoldCases(t *testing.T) {
	s := NewStore()
	m := meta()
	m.Name = "Trans"
	s.Create(m)
	for _, name := range []string{"trans", "TRANS", "Trans", "tRaNs"} {
		if _, ok := s.Table(name); !ok {
			t.Fatalf("lookup %q failed", name)
		}
	}
	if _, ok := s.Table("transx"); ok {
		t.Fatal("lookup of unknown table succeeded")
	}
}

// TestConcurrentReadersAndInserts drives concurrent snapshot readers (both
// views) against an inserting writer; run under -race it proves the frozen
// header discipline (cloned tail bitmaps, append-past-length payloads).
func TestConcurrentReadersAndInserts(t *testing.T) {
	s := NewStore()
	td := s.Create(meta())
	const writes = 5000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writes; i++ {
			v := sqltypes.Value(sqltypes.NewInt(int64(i)))
			b := sqltypes.Value(sqltypes.NewString("s"))
			if i%11 == 0 {
				b = sqltypes.Null
			}
			td.MustInsert(v, b)
		}
	}()
	for r := 0; r < 4; r++ {
		go func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				rows, _ := s.Scan("t")
				chunks, n := td.SnapshotChunks()
				if len(rows) > writes || n > writes {
					panic("snapshot overshoot")
				}
				sum := 0
				for _, c := range chunks {
					for i := 0; i < c.N; i++ {
						if !c.Cols[0].IsNull(i) {
							sum += int(c.Cols[0].Value(i).Int())
						}
					}
				}
				_ = sum
			}
		}()
	}
	<-done
	if td.Cardinality() != writes {
		t.Fatalf("cardinality %d, want %d", td.Cardinality(), writes)
	}
}
