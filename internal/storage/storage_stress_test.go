package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sqltypes"
)

// TestViewPointerReadersDuringDMLStorm is the RCU contract test for the
// storage read path: Scan/SnapshotChunks are pure atomic loads of a published
// view, so readers must observe internally consistent views — row count equals
// the sum of chunk lengths, the materialized row slice matches the count, and
// an insert-only table's count is monotonic per reader — while one writer
// appends and another storms the store-level table map with Put (the
// copy-on-write swap DML uses) and Create/Drop of unrelated tables.
func TestViewPointerReadersDuringDMLStorm(t *testing.T) {
	s := NewStore()
	td := s.Create(meta())

	const writes = 4000
	const readers = 4
	errc := make(chan error, readers)
	done := make(chan struct{})

	var writerWG sync.WaitGroup
	writerWG.Add(2)
	// Appender: grows the published view of "t" one row at a time.
	go func() {
		defer writerWG.Done()
		for i := 0; i < writes; i++ {
			td.MustInsert(sqltypes.Value(sqltypes.NewInt(int64(i))), sqltypes.Value(sqltypes.NewString("s")))
		}
	}()
	// Map stormer: swaps whole tables in and out of the store map, the path
	// DELETE/UPDATE maintenance takes. Readers of "t" must never notice.
	go func() {
		defer writerWG.Done()
		other := meta()
		other.Name = "other"
		for i := 0; i < 400; i++ {
			rows := [][]sqltypes.Value{{sqltypes.Value(sqltypes.NewInt(int64(i))), sqltypes.Value(sqltypes.NewString("x"))}}
			s.Put(other, rows)
			if i%7 == 0 {
				s.Drop("other")
			}
		}
	}()

	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			last := -1
			for {
				select {
				case <-done:
					return
				default:
				}
				chunks, n := s.MustTable("t").SnapshotChunks()
				sum := 0
				for _, c := range chunks {
					sum += c.N
				}
				if sum != n {
					errc <- fmt.Errorf("reader %d: view count %d != chunk sum %d", r, n, sum)
					return
				}
				if n < last {
					errc <- fmt.Errorf("reader %d: insert-only count went backwards: %d after %d", r, n, last)
					return
				}
				last = n
				rows, err := s.Scan("t")
				if err != nil {
					errc <- err
					return
				}
				if len(rows) < n {
					errc <- fmt.Errorf("reader %d: materialized rows %d < earlier count %d", r, len(rows), n)
					return
				}
			}
		}(r)
	}

	writerWG.Wait()
	close(done)
	readerWG.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if got := td.Cardinality(); got != writes {
		t.Fatalf("final cardinality %d, want %d", got, writes)
	}
	rows := td.Snapshot()
	if len(rows) != writes {
		t.Fatalf("final snapshot %d rows, want %d", len(rows), writes)
	}
}
