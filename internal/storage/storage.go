// Package storage provides an in-memory row store: named tables with
// catalog-described schemas and bulk loading. It is the execution substrate —
// the paper ran inside DB2; we run the same QGM graphs over this store.
//
// Concurrency: the store supports concurrent readers (Scan, Table, TableRows)
// alongside maintenance writers (Insert, Put, Drop). Scan returns a snapshot
// slice header — appends after the scan never reach it, and Put swaps the
// whole table so in-flight readers keep their old version. Direct access to
// TableData.Rows remains available for single-threaded loading and tests; it
// must not be mixed with concurrent use of the same table.
package storage

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/sqltypes"
)

// TableData is the stored rows of one table.
type TableData struct {
	Meta *catalog.Table

	mu sync.RWMutex
	// Rows may be read/written directly in single-threaded code; concurrent
	// paths go through Insert/Snapshot, which guard it with mu.
	Rows [][]sqltypes.Value
}

// Store maps table names to their data. All methods are safe for concurrent
// use; writers (Create, Put, Drop) serialize against readers.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*TableData
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*TableData)}
}

// Create registers an empty table with the given schema.
func (s *Store) Create(meta *catalog.Table) *TableData {
	td := &TableData{Meta: meta}
	s.mu.Lock()
	s.tables[strings.ToLower(meta.Name)] = td
	s.mu.Unlock()
	return td
}

// Put replaces (or creates) a table's data wholesale. Readers that already
// scanned the table keep their previous snapshot.
func (s *Store) Put(meta *catalog.Table, rows [][]sqltypes.Value) *TableData {
	td := &TableData{Meta: meta, Rows: rows}
	s.mu.Lock()
	s.tables[strings.ToLower(meta.Name)] = td
	s.mu.Unlock()
	return td
}

// Drop removes a table.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	delete(s.tables, strings.ToLower(name))
	s.mu.Unlock()
}

// Table returns a table's data by name.
func (s *Store) Table(name string) (*TableData, bool) {
	s.mu.RLock()
	td, ok := s.tables[strings.ToLower(name)]
	s.mu.RUnlock()
	return td, ok
}

// MustTable is Table that panics when missing.
func (s *Store) MustTable(name string) *TableData {
	td, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("storage: table %q not loaded", name))
	}
	return td
}

// Overlay returns a new Store that shares every table with s except name,
// which is replaced by the given rows. Maintenance uses it to evaluate a
// delta query (base table = just the inserted rows) without mutating the
// shared store under concurrent readers.
func (s *Store) Overlay(name string, meta *catalog.Table, rows [][]sqltypes.Value) *Store {
	out := NewStore()
	s.mu.RLock()
	for n, td := range s.tables {
		out.tables[n] = td
	}
	s.mu.RUnlock()
	out.tables[strings.ToLower(name)] = &TableData{Meta: meta, Rows: rows}
	return out
}

// Scan returns a snapshot of a table's rows for execution. It is the
// storage-layer fault site ("storage.scan:<table>"): chaos tests inject scan
// errors and delays here to prove the pipeline answers from base tables
// anyway.
func (s *Store) Scan(name string) ([][]sqltypes.Value, error) {
	td, ok := s.Table(name)
	if !ok {
		return nil, fmt.Errorf("storage: table %q not loaded", strings.ToLower(name))
	}
	if err := faultinject.Hit("storage.scan:" + td.Meta.Name); err != nil {
		return nil, fmt.Errorf("storage: scanning %q: %w", td.Meta.Name, err)
	}
	return td.Snapshot(), nil
}

// Snapshot returns the current rows as a stable slice header: rows appended
// after the call are not visible through it.
func (t *TableData) Snapshot() [][]sqltypes.Value {
	t.mu.RLock()
	rows := t.Rows
	t.mu.RUnlock()
	return rows
}

// Insert appends one row after arity-checking it.
func (t *TableData) Insert(row []sqltypes.Value) error {
	if len(row) != len(t.Meta.Columns) {
		return fmt.Errorf("storage: row arity %d != %d for table %s", len(row), len(t.Meta.Columns), t.Meta.Name)
	}
	t.mu.Lock()
	t.Rows = append(t.Rows, row)
	t.mu.Unlock()
	return nil
}

// MustInsert is Insert that panics on error.
func (t *TableData) MustInsert(row ...sqltypes.Value) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// Cardinality returns the row count.
func (t *TableData) Cardinality() int {
	t.mu.RLock()
	n := len(t.Rows)
	t.mu.RUnlock()
	return n
}

// TableRows reports a table's cardinality (0 when not loaded); it implements
// the rewriter's Sizer interface for cost-based AST applicability.
func (s *Store) TableRows(name string) int {
	td, ok := s.Table(name)
	if !ok {
		return 0
	}
	return td.Cardinality()
}
