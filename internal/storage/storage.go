// Package storage provides an in-memory row store: named tables with
// catalog-described schemas and bulk loading. It is the execution substrate —
// the paper ran inside DB2; we run the same QGM graphs over this store.
package storage

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/sqltypes"
)

// TableData is the stored rows of one table.
type TableData struct {
	Meta *catalog.Table
	Rows [][]sqltypes.Value
}

// Store maps table names to their data. Mutation is not concurrency-safe;
// reads after load are.
type Store struct {
	tables map[string]*TableData
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*TableData)}
}

// Create registers an empty table with the given schema.
func (s *Store) Create(meta *catalog.Table) *TableData {
	td := &TableData{Meta: meta}
	s.tables[strings.ToLower(meta.Name)] = td
	return td
}

// Put replaces (or creates) a table's data wholesale.
func (s *Store) Put(meta *catalog.Table, rows [][]sqltypes.Value) *TableData {
	td := &TableData{Meta: meta, Rows: rows}
	s.tables[strings.ToLower(meta.Name)] = td
	return td
}

// Drop removes a table.
func (s *Store) Drop(name string) {
	delete(s.tables, strings.ToLower(name))
}

// Table returns a table's data by name.
func (s *Store) Table(name string) (*TableData, bool) {
	td, ok := s.tables[strings.ToLower(name)]
	return td, ok
}

// MustTable is Table that panics when missing.
func (s *Store) MustTable(name string) *TableData {
	td, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("storage: table %q not loaded", name))
	}
	return td
}

// Scan returns a table's rows for execution. It is the storage-layer fault
// site ("storage.scan:<table>"): chaos tests inject scan errors and delays
// here to prove the pipeline answers from base tables anyway.
func (s *Store) Scan(name string) ([][]sqltypes.Value, error) {
	td, ok := s.Table(name)
	if !ok {
		return nil, fmt.Errorf("storage: table %q not loaded", strings.ToLower(name))
	}
	if err := faultinject.Hit("storage.scan:" + td.Meta.Name); err != nil {
		return nil, fmt.Errorf("storage: scanning %q: %w", td.Meta.Name, err)
	}
	return td.Rows, nil
}

// Insert appends one row after arity-checking it.
func (t *TableData) Insert(row []sqltypes.Value) error {
	if len(row) != len(t.Meta.Columns) {
		return fmt.Errorf("storage: row arity %d != %d for table %s", len(row), len(t.Meta.Columns), t.Meta.Name)
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// MustInsert is Insert that panics on error.
func (t *TableData) MustInsert(row ...sqltypes.Value) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// Cardinality returns the row count.
func (t *TableData) Cardinality() int { return len(t.Rows) }

// TableRows reports a table's cardinality (0 when not loaded); it implements
// the rewriter's Sizer interface for cost-based AST applicability.
func (s *Store) TableRows(name string) int {
	td, ok := s.Table(name)
	if !ok {
		return 0
	}
	return td.Cardinality()
}
