// Package storage provides an in-memory column store: named tables with
// catalog-described schemas, bulk loading, and chunked column-major data. It
// is the execution substrate — the paper ran inside DB2; we run the same QGM
// graphs over this store.
//
// Layout: each table's rows live in fixed-capacity column-major chunks
// (ChunkRows rows each; per-column typed vectors with null bitmaps — see
// Chunk). The vectorized executor scans chunks directly via ScanChunks; the
// row engine and maintenance layer read through the row-view adapter
// (Scan/Snapshot), a lazily materialized [][]Value cache that is kept warm
// across appends.
//
// Concurrency: reads are lock-free. The store's table map and each table's
// data view are published RCU-style through atomic pointers: Scan, ScanChunks,
// Table, Cardinality, and TableRows load the current immutable snapshot and
// never block behind a writer. Writers (Insert, Put, Create, Drop) serialize
// on a plain mutex, prepare the replacement — a copied table map, or a frozen
// chunk view — and swap it in; in-flight readers keep whatever generation
// they loaded. Snapshots are therefore stable by construction: Scan returns a
// row-slice header and SnapshotChunks returns frozen chunk headers that
// appends never reach, and Put swaps the whole table so readers keep their
// old version. The legacy TableData.Rows field is gone; tests and
// single-threaded loaders use the Rows() adapter, and an astlint analyzer
// keeps non-test code off it.
//
// Key invariant: the table map is keyed by the ASCII-lowercased table name,
// normalized once when a writer registers the table (Create/Put/Overlay/
// Drop). Lookups fold their argument without allocating (hot path: every
// query scan and every maintenance overlay resolves names).
package storage

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/sqltypes"
)

// tableView is one immutable published generation of a table's data: frozen
// chunks, the row count they cover, and (once materialized) the row-view
// cache. Readers obtain a view with a single atomic load; writers build the
// next view under TableData.mu and publish it whole.
type tableView struct {
	frozen []*Chunk // frozen: sealed chunks shared, tail header-copied
	n      int      // row count covered by chunks
	rows   [][]sqltypes.Value
	rowsOK bool
}

// TableData is the stored data of one table: column-major chunks, plus a
// lazily built row-view cache serving the row-at-a-time engine.
//
// The canonical (mutable) chunks live behind mu and are touched only by
// writers; every read goes through the immutable view published in view, so
// scans never contend with an in-flight append.
type TableData struct {
	Meta *catalog.Table

	mu     sync.Mutex // serializes writers and lazy row materialization
	chunks []*Chunk   // canonical column-major data (writer-owned)
	n      int        // total row count (writer-owned)

	view atomic.Pointer[tableView] // current read snapshot; never nil
}

// Store maps table names to their data. All methods are safe for concurrent
// use; readers are lock-free (they load the published map), writers
// (Create, Put, Drop) serialize on mu and swap in a copied map.
type Store struct {
	mu     sync.Mutex // serializes writers; readers use tables
	tables atomic.Pointer[map[string]*TableData]
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	m := map[string]*TableData{}
	s.tables.Store(&m)
	return s
}

// tablesNow returns the current published table map (read-only).
func (s *Store) tablesNow() map[string]*TableData {
	if m := s.tables.Load(); m != nil {
		return *m
	}
	return nil
}

// setTable publishes a copy of the table map with name bound to td (or
// removed when td is nil). Callers must hold s.mu.
func (s *Store) setTable(name string, td *TableData) {
	old := s.tablesNow()
	next := make(map[string]*TableData, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if td == nil {
		delete(next, name)
	} else {
		next[name] = td
	}
	s.tables.Store(&next)
}

// newTableData builds a table from row-major data, seeding the row-view
// cache with the given slice (callers hand ownership over, as they did when
// rows were the primary representation).
func newTableData(meta *catalog.Table, rows [][]sqltypes.Value) *TableData {
	td := &TableData{Meta: meta}
	v := &tableView{}
	if len(rows) > 0 {
		td.chunks = buildChunks(len(meta.Columns), rows)
		td.n = len(rows)
		v = &tableView{frozen: frozenChunks(td.chunks), n: td.n, rows: rows, rowsOK: true}
	}
	td.view.Store(v)
	return td
}

// frozenChunks returns the read-only view of the canonical chunks: sealed
// chunks are shared, the tail is header-copied (Chunk.frozen).
func frozenChunks(chunks []*Chunk) []*Chunk {
	if len(chunks) == 0 {
		return nil
	}
	snap := make([]*Chunk, len(chunks))
	for i, c := range chunks {
		snap[i] = c.frozen()
	}
	return snap
}

// Create registers an empty table with the given schema.
func (s *Store) Create(meta *catalog.Table) *TableData {
	td := newTableData(meta, nil)
	s.mu.Lock()
	s.setTable(strings.ToLower(meta.Name), td)
	s.mu.Unlock()
	return td
}

// Put replaces (or creates) a table's data wholesale. Readers that already
// scanned the table keep their previous snapshot.
func (s *Store) Put(meta *catalog.Table, rows [][]sqltypes.Value) *TableData {
	td := newTableData(meta, rows)
	s.mu.Lock()
	s.setTable(strings.ToLower(meta.Name), td)
	s.mu.Unlock()
	return td
}

// Drop removes a table.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	s.setTable(strings.ToLower(name), nil)
	s.mu.Unlock()
}

// Table returns a table's data by name. Lock-free.
func (s *Store) Table(name string) (*TableData, bool) {
	return lookupFold(s.tablesNow(), name)
}

// lookupFold resolves a possibly mixed-case name against the lowercase-keyed
// table map without allocating on the already-lowercase fast path (the
// compiler elides the []byte→string conversion in a map index expression).
func lookupFold(m map[string]*TableData, name string) (*TableData, bool) {
	hasUpper := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 0x80 {
			// Non-ASCII: defer to full Unicode folding.
			td, ok := m[strings.ToLower(name)]
			return td, ok
		}
		if 'A' <= c && c <= 'Z' {
			hasUpper = true
		}
	}
	if !hasUpper {
		td, ok := m[name]
		return td, ok
	}
	if len(name) <= 128 {
		var arr [128]byte
		b := arr[:len(name)]
		for i := 0; i < len(name); i++ {
			c := name[i]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			b[i] = c
		}
		td, ok := m[string(b)]
		return td, ok
	}
	td, ok := m[strings.ToLower(name)]
	return td, ok
}

// MustTable is Table that panics when missing.
func (s *Store) MustTable(name string) *TableData {
	td, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("storage: table %q not loaded", name))
	}
	return td
}

// Overlay returns a new Store that shares every table with s except name,
// which is replaced by the given rows. Maintenance uses it to evaluate a
// delta query (base table = just the inserted rows) without mutating the
// shared store under concurrent readers.
func (s *Store) Overlay(name string, meta *catalog.Table, rows [][]sqltypes.Value) *Store {
	out := NewStore()
	next := make(map[string]*TableData)
	for n, td := range s.tablesNow() {
		next[n] = td
	}
	next[strings.ToLower(name)] = newTableData(meta, rows)
	out.mu.Lock()
	out.tables.Store(&next)
	out.mu.Unlock()
	return out
}

// Scan returns a snapshot of a table's rows for execution. It is the
// storage-layer fault site ("storage.scan:<table>"): chaos tests inject scan
// errors and delays here to prove the pipeline answers from base tables
// anyway.
func (s *Store) Scan(name string) ([][]sqltypes.Value, error) {
	td, ok := s.Table(name)
	if !ok {
		return nil, fmt.Errorf("storage: table %q not loaded", strings.ToLower(name))
	}
	if err := faultinject.Hit("storage.scan:" + td.Meta.Name); err != nil {
		return nil, fmt.Errorf("storage: scanning %q: %w", td.Meta.Name, err)
	}
	return td.Snapshot(), nil
}

// ScanChunks returns a frozen column-major snapshot of a table plus its row
// count, for the vectorized executor. It hits the same fault site as Scan —
// chaos coverage does not depend on which executor path runs.
func (s *Store) ScanChunks(name string) ([]*Chunk, int, error) {
	td, ok := s.Table(name)
	if !ok {
		return nil, 0, fmt.Errorf("storage: table %q not loaded", strings.ToLower(name))
	}
	if err := faultinject.Hit("storage.scan:" + td.Meta.Name); err != nil {
		return nil, 0, fmt.Errorf("storage: scanning %q: %w", td.Meta.Name, err)
	}
	chunks, n := td.SnapshotChunks()
	return chunks, n, nil
}

// Snapshot returns the current rows as a stable slice header: rows appended
// after the call are not visible through it. The fast path is one atomic
// view load; only the first call after a bulk chunk load pays materializing
// the row view, which then stays warm across Inserts.
func (t *TableData) Snapshot() [][]sqltypes.Value {
	v := t.view.Load()
	if v.rowsOK {
		return v.rows
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v = t.view.Load() // re-load: a writer may have published while we waited
	if !v.rowsOK {
		next := &tableView{
			frozen: v.frozen,
			n:      v.n,
			rows:   materializeRows(v.n, v.frozen),
			rowsOK: true,
		}
		t.view.Store(next)
		v = next
	}
	return v.rows
}

// Rows is the row-view adapter for single-threaded loaders and tests; it is
// Snapshot under a name that mirrors the retired direct-access field. Mixed
// concurrent use follows Snapshot's rules; mutating the returned rows is not
// allowed (copy and Put instead).
func (t *TableData) Rows() [][]sqltypes.Value { return t.Snapshot() }

// SnapshotChunks returns the frozen chunk view and the row count it covers.
// Lock-free: the view is republished by every append, so readers never wait
// behind a writer. Sealed chunks are shared; the tail chunk is header-copied
// with cloned null bitmaps (see Chunk.frozen).
func (t *TableData) SnapshotChunks() ([]*Chunk, int) {
	v := t.view.Load()
	return v.frozen, v.n
}

// Insert appends one row after arity-checking it, then publishes the next
// read view: the canonical chunks advance under the writer mutex, and the
// frozen snapshot (plus the row-view cache, when materialized) is swapped in
// atomically so concurrent scans observe either the old or the new
// generation, never a half-appended row.
func (t *TableData) Insert(row []sqltypes.Value) error {
	if len(row) != len(t.Meta.Columns) {
		return fmt.Errorf("storage: row arity %d != %d for table %s", len(row), len(t.Meta.Columns), t.Meta.Name)
	}
	t.mu.Lock()
	last := len(t.chunks) - 1
	if last < 0 || t.chunks[last].N == ChunkRows {
		t.chunks = append(t.chunks, newChunk(len(t.Meta.Columns)))
		last++
	}
	t.chunks[last].appendRow(row)
	t.n++
	prev := t.view.Load()
	next := &tableView{frozen: frozenChunks(t.chunks), n: t.n}
	if prev.rowsOK {
		// Keep the row view warm: append writes past every outstanding
		// snapshot header's length, so older generations stay stable.
		next.rows, next.rowsOK = append(prev.rows, row), true
	}
	t.view.Store(next)
	t.mu.Unlock()
	return nil
}

// MustInsert is Insert that panics on error.
func (t *TableData) MustInsert(row ...sqltypes.Value) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// Cardinality returns the row count. Lock-free.
func (t *TableData) Cardinality() int {
	return t.view.Load().n
}

// TableRows reports a table's cardinality (0 when not loaded); it implements
// the rewriter's Sizer interface for cost-based AST applicability. Lock-free:
// the cost-based rewrite path sizes tables on every uncached query.
func (s *Store) TableRows(name string) int {
	td, ok := s.Table(name)
	if !ok {
		return 0
	}
	return td.Cardinality()
}
