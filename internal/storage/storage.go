// Package storage provides an in-memory column store: named tables with
// catalog-described schemas, bulk loading, and chunked column-major data. It
// is the execution substrate — the paper ran inside DB2; we run the same QGM
// graphs over this store.
//
// Layout: each table's rows live in fixed-capacity column-major chunks
// (ChunkRows rows each; per-column typed vectors with null bitmaps — see
// Chunk). The vectorized executor scans chunks directly via ScanChunks; the
// row engine and maintenance layer read through the row-view adapter
// (Scan/Snapshot), a lazily materialized [][]Value cache that is kept warm
// across appends.
//
// Concurrency: the store supports concurrent readers (Scan, ScanChunks,
// Table, TableRows) alongside maintenance writers (Insert, Put, Drop).
// Snapshots are stable: Scan returns a row-slice header and SnapshotChunks
// returns frozen chunk headers — appends after the call never reach either —
// and Put swaps the whole table so in-flight readers keep their old version.
// The legacy TableData.Rows field is gone; tests and single-threaded loaders
// use the Rows() adapter, and an astlint analyzer keeps non-test code off it.
//
// Key invariant: the table map is keyed by the ASCII-lowercased table name,
// normalized once when a writer registers the table (Create/Put/Overlay/
// Drop). Lookups fold their argument without allocating (hot path: every
// query scan and every maintenance overlay resolves names).
package storage

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/sqltypes"
)

// TableData is the stored data of one table: column-major chunks, plus a
// lazily built row-view cache serving the row-at-a-time engine.
type TableData struct {
	Meta *catalog.Table

	mu     sync.RWMutex
	chunks []*Chunk // canonical column-major data
	n      int      // total row count

	// rows is the row-view adapter cache: materialized once on demand,
	// then kept warm by Insert appending to it. Snapshot hands out the
	// slice header; appends write past every outstanding header's length.
	rows   [][]sqltypes.Value
	rowsOK bool

	// snap caches the frozen chunk view handed to SnapshotChunks; valid
	// while snapN == n (appends invalidate it).
	snap  []*Chunk
	snapN int
}

// Store maps table names to their data. All methods are safe for concurrent
// use; writers (Create, Put, Drop) serialize against readers.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*TableData
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*TableData)}
}

// newTableData builds a table from row-major data, seeding the row-view
// cache with the given slice (callers hand ownership over, as they did when
// rows were the primary representation).
func newTableData(meta *catalog.Table, rows [][]sqltypes.Value) *TableData {
	td := &TableData{Meta: meta, snapN: -1}
	if len(rows) > 0 {
		td.chunks = buildChunks(len(meta.Columns), rows)
		td.n = len(rows)
		td.rows = rows
		td.rowsOK = true
	}
	return td
}

// Create registers an empty table with the given schema.
func (s *Store) Create(meta *catalog.Table) *TableData {
	td := newTableData(meta, nil)
	s.mu.Lock()
	s.tables[strings.ToLower(meta.Name)] = td
	s.mu.Unlock()
	return td
}

// Put replaces (or creates) a table's data wholesale. Readers that already
// scanned the table keep their previous snapshot.
func (s *Store) Put(meta *catalog.Table, rows [][]sqltypes.Value) *TableData {
	td := newTableData(meta, rows)
	s.mu.Lock()
	s.tables[strings.ToLower(meta.Name)] = td
	s.mu.Unlock()
	return td
}

// Drop removes a table.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	delete(s.tables, strings.ToLower(name))
	s.mu.Unlock()
}

// Table returns a table's data by name.
func (s *Store) Table(name string) (*TableData, bool) {
	s.mu.RLock()
	td, ok := lookupFold(s.tables, name)
	s.mu.RUnlock()
	return td, ok
}

// lookupFold resolves a possibly mixed-case name against the lowercase-keyed
// table map without allocating on the already-lowercase fast path (the
// compiler elides the []byte→string conversion in a map index expression).
func lookupFold(m map[string]*TableData, name string) (*TableData, bool) {
	hasUpper := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 0x80 {
			// Non-ASCII: defer to full Unicode folding.
			td, ok := m[strings.ToLower(name)]
			return td, ok
		}
		if 'A' <= c && c <= 'Z' {
			hasUpper = true
		}
	}
	if !hasUpper {
		td, ok := m[name]
		return td, ok
	}
	if len(name) <= 128 {
		var arr [128]byte
		b := arr[:len(name)]
		for i := 0; i < len(name); i++ {
			c := name[i]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			b[i] = c
		}
		td, ok := m[string(b)]
		return td, ok
	}
	td, ok := m[strings.ToLower(name)]
	return td, ok
}

// MustTable is Table that panics when missing.
func (s *Store) MustTable(name string) *TableData {
	td, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("storage: table %q not loaded", name))
	}
	return td
}

// Overlay returns a new Store that shares every table with s except name,
// which is replaced by the given rows. Maintenance uses it to evaluate a
// delta query (base table = just the inserted rows) without mutating the
// shared store under concurrent readers.
func (s *Store) Overlay(name string, meta *catalog.Table, rows [][]sqltypes.Value) *Store {
	out := NewStore()
	s.mu.RLock()
	for n, td := range s.tables {
		out.tables[n] = td
	}
	s.mu.RUnlock()
	out.tables[strings.ToLower(name)] = newTableData(meta, rows)
	return out
}

// Scan returns a snapshot of a table's rows for execution. It is the
// storage-layer fault site ("storage.scan:<table>"): chaos tests inject scan
// errors and delays here to prove the pipeline answers from base tables
// anyway.
func (s *Store) Scan(name string) ([][]sqltypes.Value, error) {
	td, ok := s.Table(name)
	if !ok {
		return nil, fmt.Errorf("storage: table %q not loaded", strings.ToLower(name))
	}
	if err := faultinject.Hit("storage.scan:" + td.Meta.Name); err != nil {
		return nil, fmt.Errorf("storage: scanning %q: %w", td.Meta.Name, err)
	}
	return td.Snapshot(), nil
}

// ScanChunks returns a frozen column-major snapshot of a table plus its row
// count, for the vectorized executor. It hits the same fault site as Scan —
// chaos coverage does not depend on which executor path runs.
func (s *Store) ScanChunks(name string) ([]*Chunk, int, error) {
	td, ok := s.Table(name)
	if !ok {
		return nil, 0, fmt.Errorf("storage: table %q not loaded", strings.ToLower(name))
	}
	if err := faultinject.Hit("storage.scan:" + td.Meta.Name); err != nil {
		return nil, 0, fmt.Errorf("storage: scanning %q: %w", td.Meta.Name, err)
	}
	chunks, n := td.SnapshotChunks()
	return chunks, n, nil
}

// Snapshot returns the current rows as a stable slice header: rows appended
// after the call are not visible through it. The first call after a bulk
// chunk load materializes the row view; it stays warm across Inserts.
func (t *TableData) Snapshot() [][]sqltypes.Value {
	t.mu.RLock()
	if t.rowsOK {
		rows := t.rows
		t.mu.RUnlock()
		return rows
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.rowsOK {
		t.rows = materializeRows(t.n, t.chunks)
		t.rowsOK = true
	}
	return t.rows
}

// Rows is the row-view adapter for single-threaded loaders and tests; it is
// Snapshot under a name that mirrors the retired direct-access field. Mixed
// concurrent use follows Snapshot's rules; mutating the returned rows is not
// allowed (copy and Put instead).
func (t *TableData) Rows() [][]sqltypes.Value { return t.Snapshot() }

// SnapshotChunks returns the frozen chunk view and the row count it covers.
// Sealed chunks are shared; the tail chunk is header-copied with cloned null
// bitmaps (see Chunk.frozen). The view is cached until the next append.
func (t *TableData) SnapshotChunks() ([]*Chunk, int) {
	t.mu.RLock()
	if t.snapN == t.n {
		chunks, n := t.snap, t.snapN
		t.mu.RUnlock()
		return chunks, n
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.snapN != t.n {
		snap := make([]*Chunk, len(t.chunks))
		for i, c := range t.chunks {
			snap[i] = c.frozen()
		}
		t.snap, t.snapN = snap, t.n
	}
	return t.snap, t.snapN
}

// Insert appends one row after arity-checking it.
func (t *TableData) Insert(row []sqltypes.Value) error {
	if len(row) != len(t.Meta.Columns) {
		return fmt.Errorf("storage: row arity %d != %d for table %s", len(row), len(t.Meta.Columns), t.Meta.Name)
	}
	t.mu.Lock()
	last := len(t.chunks) - 1
	if last < 0 || t.chunks[last].N == ChunkRows {
		t.chunks = append(t.chunks, newChunk(len(t.Meta.Columns)))
		last++
	}
	t.chunks[last].appendRow(row)
	t.n++
	if t.rowsOK {
		t.rows = append(t.rows, row)
	}
	t.mu.Unlock()
	return nil
}

// MustInsert is Insert that panics on error.
func (t *TableData) MustInsert(row ...sqltypes.Value) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// Cardinality returns the row count.
func (t *TableData) Cardinality() int {
	t.mu.RLock()
	n := t.n
	t.mu.RUnlock()
	return n
}

// TableRows reports a table's cardinality (0 when not loaded); it implements
// the rewriter's Sizer interface for cost-based AST applicability.
func (s *Store) TableRows(name string) int {
	td, ok := s.Table(name)
	if !ok {
		return 0
	}
	return td.Cardinality()
}
