package storage

import "repro/internal/sqltypes"

// ChunkRows is the fixed row capacity of one storage chunk. 1024 rows keeps a
// chunk's typed column payloads (8 KiB per int64/float64 column) L1/L2
// resident while amortizing per-chunk dispatch in the vectorized executor.
const ChunkRows = 1024

// Chunk is one column-major batch of table rows: per-column typed vectors of
// up to ChunkRows values each. Chunks returned by SnapshotChunks are frozen —
// N and the vector headers pin a consistent prefix that later appends never
// touch — and must be treated as read-only.
type Chunk struct {
	// N is the row count (all Cols have length N).
	N int
	// Cols holds one vector per table column.
	Cols []sqltypes.Vec
}

// newChunk returns an empty chunk with ncols column vectors.
func newChunk(ncols int) *Chunk {
	return &Chunk{Cols: make([]sqltypes.Vec, ncols)}
}

// appendRow appends one row to the chunk, NULL-padding short rows and
// dropping values beyond the schema width (Insert arity-checks; bulk loads
// are trusted to match their catalog schema).
func (c *Chunk) appendRow(row []sqltypes.Value) {
	for i := range c.Cols {
		if i < len(row) {
			c.Cols[i].AppendValue(row[i])
		} else {
			c.Cols[i].AppendNull()
		}
	}
	c.N++
}

// Row materializes row i of the chunk into dst (which must have length
// len(Cols)).
func (c *Chunk) Row(i int, dst []sqltypes.Value) {
	for j := range c.Cols {
		dst[j] = c.Cols[j].Value(i)
	}
}

// frozen returns a read-only view of the chunk: sealed (full) chunks are
// immutable and shared directly; a partially filled tail chunk is header-
// copied with cloned null bitmaps, because appends to the tail write typed
// payload elements only past the frozen length but set null bits in packed
// words shared with frozen rows.
func (c *Chunk) frozen() *Chunk {
	if c.N == ChunkRows {
		return c
	}
	f := &Chunk{N: c.N, Cols: make([]sqltypes.Vec, len(c.Cols))}
	for i := range c.Cols {
		f.Cols[i] = c.Cols[i].Frozen()
	}
	return f
}

// buildChunks converts row-major data to chunks.
func buildChunks(ncols int, rows [][]sqltypes.Value) []*Chunk {
	chunks := make([]*Chunk, 0, (len(rows)+ChunkRows-1)/ChunkRows)
	var cur *Chunk
	for _, r := range rows {
		if cur == nil || cur.N == ChunkRows {
			cur = newChunk(ncols)
			chunks = append(chunks, cur)
		}
		cur.appendRow(r)
	}
	return chunks
}

// materializeRows converts chunks back to row-major data.
func materializeRows(n int, chunks []*Chunk) [][]sqltypes.Value {
	rows := make([][]sqltypes.Value, 0, n)
	for _, c := range chunks {
		for i := 0; i < c.N; i++ {
			row := make([]sqltypes.Value, len(c.Cols))
			c.Row(i, row)
			rows = append(rows, row)
		}
	}
	return rows
}
