// Package faultinject provides deterministic fault injection for resilience
// testing. Production code calls Hit at named sites ("storage.scan:trans",
// "maintain.full:ast1", "core.match:ast1"); tests arm sites with faults —
// returned errors, panics, or delays — and assert that the pipeline degrades
// gracefully instead of failing the query.
//
// The registry is disabled by default: Hit is a single atomic load on the hot
// path, so leaving the calls compiled into release binaries costs nothing
// measurable. Probabilistic faults draw from an RNG seeded by Enable, making
// chaos runs reproducible.
//
// Site names are hierarchical: "storage.scan:trans" is matched first exactly,
// then by its "storage.scan" prefix, so a test can arm one table's scan or
// every scan with a single Set call.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what happens when an armed site is hit. Delay applies
// first, then Panic (if set), then Err.
type Fault struct {
	Err   error         // error returned from Hit
	Panic any           // value to panic with; takes precedence over Err
	Delay time.Duration // sleep before panicking/returning
	Prob  float64       // firing probability per hit; <=0 or >=1 means always
	Times int           // fire at most this many times; 0 means unlimited
}

type armed struct {
	Fault
	hits  int
	fired int
}

var (
	active atomic.Bool // fast-path gate; true only between Enable and Disable

	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*armed
)

// Enable arms the registry. The seed drives probabilistic faults so chaos
// runs replay deterministically. Tests should defer Disable().
func Enable(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
	sites = make(map[string]*armed)
	active.Store(true)
}

// Disable clears all armed sites and restores the zero-cost fast path.
func Disable() {
	mu.Lock()
	defer mu.Unlock()
	active.Store(false)
	rng = nil
	sites = nil
}

// Set arms a site (or a site prefix, see package comment). It panics when the
// registry is not enabled — arming faults outside a chaos test is a bug.
func Set(site string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		panic("faultinject: Set called before Enable")
	}
	sites[site] = &armed{Fault: f}
}

// Clear disarms one site.
func Clear(site string) {
	mu.Lock()
	defer mu.Unlock()
	if sites != nil {
		delete(sites, site)
	}
}

// Err is a convenience constructor for an always-firing error fault.
func Err(site string) Fault {
	return Fault{Err: fmt.Errorf("faultinject: injected error at %s", site)}
}

// Hit is called from production injection points. When the site (or its
// prefix up to the first ':') is armed it sleeps Fault.Delay, panics with
// Fault.Panic when set, and returns Fault.Err. Disabled registries return nil
// after one atomic load.
func Hit(site string) error {
	if !active.Load() {
		return nil
	}
	mu.Lock()
	a := sites[site]
	if a == nil {
		if i := strings.IndexByte(site, ':'); i > 0 {
			a = sites[site[:i]]
		}
	}
	if a == nil {
		mu.Unlock()
		return nil
	}
	a.hits++
	if a.Times > 0 && a.fired >= a.Times {
		mu.Unlock()
		return nil
	}
	if a.Prob > 0 && a.Prob < 1 && rng.Float64() >= a.Prob {
		mu.Unlock()
		return nil
	}
	a.fired++
	f := a.Fault
	mu.Unlock()

	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}

// Fired reports how many times a site actually fired (not just matched).
func Fired(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if a := sites[site]; a != nil {
		return a.fired
	}
	return 0
}

// Sites returns the armed site names in sorted order.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
