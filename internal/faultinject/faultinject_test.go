package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	if err := Hit("storage.scan:trans"); err != nil {
		t.Fatalf("disabled registry returned %v", err)
	}
}

func TestExactAndPrefixMatch(t *testing.T) {
	Enable(1)
	defer Disable()
	boom := errors.New("boom")
	Set("storage.scan", Fault{Err: boom})
	if err := Hit("storage.scan:trans"); !errors.Is(err, boom) {
		t.Fatalf("prefix match: got %v", err)
	}
	if err := Hit("storage.scan"); !errors.Is(err, boom) {
		t.Fatalf("exact match: got %v", err)
	}
	if err := Hit("maintain.full:x"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	// An exact entry wins over the prefix entry.
	ok := errors.New("specific")
	Set("storage.scan:loc", Fault{Err: ok})
	if err := Hit("storage.scan:loc"); !errors.Is(err, ok) {
		t.Fatalf("exact should win over prefix: got %v", err)
	}
}

func TestTimesBudget(t *testing.T) {
	Enable(1)
	defer Disable()
	boom := errors.New("boom")
	Set("s", Fault{Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := Hit("s"); !errors.Is(err, boom) {
			t.Fatalf("fire %d: got %v", i, err)
		}
	}
	if err := Hit("s"); err != nil {
		t.Fatalf("exhausted fault still fired: %v", err)
	}
	if got := Fired("s"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestProbabilisticIsDeterministic(t *testing.T) {
	run := func() int {
		Enable(42)
		defer Disable()
		Set("p", Fault{Err: errors.New("x"), Prob: 0.3})
		n := 0
		for i := 0; i < 1000; i++ {
			if Hit("p") != nil {
				n++
			}
		}
		return n
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different firing counts: %d vs %d", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("firing count %d far from Prob=0.3 over 1000 hits", a)
	}
}

func TestPanicAndDelay(t *testing.T) {
	Enable(1)
	defer Disable()
	Set("pan", Fault{Panic: "injected"})
	func() {
		defer func() {
			if r := recover(); r != "injected" {
				t.Fatalf("recover = %v", r)
			}
		}()
		Hit("pan")
		t.Fatal("Hit did not panic")
	}()

	Set("slow", Fault{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatalf("delay-only fault returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay not applied: %v", d)
	}
}

func TestConcurrentHits(t *testing.T) {
	Enable(7)
	defer Disable()
	Set("c", Fault{Err: errors.New("e"), Prob: 0.5})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 500; j++ {
				Hit("c")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
