// Package server is the wire server behind cmd/astserve: it exposes one
// shared astdb.Engine — catalog, plan cache, storage, summary tables — to
// many concurrent network sessions speaking the internal/wire protocol.
//
// One TCP connection is one session. Requests on a session are handled
// strictly in order; concurrency comes from many sessions sharing the engine,
// which is exactly the multi-user DBMS shape the paper's summary tables
// exist to serve. Three boundaries keep an overloaded server honest:
//
//   - a session cap: connections past Config.MaxSessions receive a typed
//     overloaded error and are closed instead of silently queueing;
//   - an admission gate (exec.Gate): at most MaxConcurrent query/exec
//     requests execute at once, QueueDepth more wait, the rest are rejected
//     with the same typed error while the session stays usable;
//   - per-query budgets: the engine's exec.Config (row budget, timeout)
//     applies to every request as it would in-process.
//
// Cancellation propagates from the socket: a client disconnect cancels the
// session context, which aborts the in-flight request through the engine's
// usual typed-error path. Shutdown drains gracefully — the listener closes,
// idle sessions are released, and every request already received is served
// to completion before its connection closes; only the hard-stop deadline
// cancels work.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/astdb"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/wire"
)

// Observability names recorded on the engine's observer (when one is
// attached), extending the DESIGN.md §9 taxonomy to the serving layer.
const (
	CtrSessionsOpened   = "server.sessions.opened"
	CtrSessionsClosed   = "server.sessions.closed"
	CtrSessionsRejected = "server.sessions.rejected"
	CtrRequests         = "server.requests"
	CtrOverloaded       = "server.overloaded"
	CtrDrainServed      = "server.drain.served"
	HistRequest         = "server.request"
)

// Config bounds one server. The zero value listens without session or
// admission limits (per-query budgets still come from the engine's
// exec.Config).
type Config struct {
	// MaxSessions caps concurrent connections; further connections get a
	// typed overloaded error and are closed. 0 = unlimited.
	MaxSessions int
	// MaxConcurrent caps query/exec requests executing at once across all
	// sessions; 0 = unlimited (ping/explain/obs are never gated).
	MaxConcurrent int
	// QueueDepth is how many gated requests may wait for a slot before the
	// gate rejects; meaningful only with MaxConcurrent > 0.
	QueueDepth int
	// WriteTimeout bounds one response write (default 30s): a stuck client
	// must not pin a session goroutine forever.
	WriteTimeout time.Duration
}

// Server serves the wire protocol over a shared engine. Construct with New,
// start with Start, stop with Shutdown.
type Server struct {
	db   *astdb.Engine
	cfg  Config
	gate *exec.Gate
	obsv *obs.Observer

	ln net.Listener
	wg sync.WaitGroup // one per live session + one for the accept loop

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool

	drainCh    chan struct{} // closed when drain starts
	hardCtx    context.Context
	hardCancel context.CancelFunc
}

// New builds a server over the engine. The engine's observer (if any)
// receives the server's counters, histograms, and per-session spans.
func New(db *astdb.Engine, cfg Config) *Server {
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	hardCtx, hardCancel := context.WithCancel(context.Background())
	return &Server{
		db:         db,
		cfg:        cfg,
		gate:       exec.NewGate(cfg.MaxConcurrent, cfg.QueueDepth),
		obsv:       db.Observer(),
		conns:      map[net.Conn]struct{}{},
		drainCh:    make(chan struct{}),
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
	}
}

// Start listens on addr (":0" picks a free port) and serves in background
// goroutines until Shutdown. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

// Addr returns the listener's address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// acceptLoop admits sessions until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		switch {
		case s.draining:
			s.mu.Unlock()
			conn.Close()
		case s.cfg.MaxSessions > 0 && len(s.conns) >= s.cfg.MaxSessions:
			s.mu.Unlock()
			s.obsv.Add(CtrSessionsRejected, 1)
			s.rejectSession(conn)
		default:
			s.conns[conn] = struct{}{}
			s.wg.Add(1)
			s.mu.Unlock()
			go s.serveConn(conn)
		}
	}
}

// rejectSession tells an over-cap client why it is being dropped.
func (s *Server) rejectSession(conn net.Conn) {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	wire.WriteFrame(conn, wire.MsgError, wire.EncodeError(wire.CodeOverloaded,
		fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions)))
	conn.Close()
}

// request is one frame read off a session's socket.
type request struct {
	typ     byte
	payload []byte
}

// sessionWriterBuf sizes each session's response buffer: big enough to absorb
// a burst of cached-query responses in one syscall, small enough that 64
// sessions cost ~1 MiB.
const sessionWriterBuf = 16 << 10

// sessionWriter batches one session's response frames through a buffered
// writer. Responses are flushed when the worker is about to block waiting for
// the next request (flush-on-idle, see serveConn), so a request/response
// client sees no added latency while a pipelining client gets many responses
// per write syscall instead of one each.
type sessionWriter struct {
	conn    net.Conn
	bw      *bufio.Writer
	timeout time.Duration
}

func newSessionWriter(conn net.Conn, timeout time.Duration) *sessionWriter {
	return &sessionWriter{conn: conn, bw: bufio.NewWriterSize(conn, sessionWriterBuf), timeout: timeout}
}

// writeFrame buffers one response frame. The write deadline is armed first so
// a buffer-overflow spill to a stuck client still times out.
func (w *sessionWriter) writeFrame(typ byte, payload []byte) error {
	w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	return wire.WriteFrame(w.bw, typ, payload)
}

// flush pushes buffered responses to the socket.
func (w *sessionWriter) flush() error {
	if w.bw.Buffered() == 0 {
		return nil
	}
	w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	return w.bw.Flush()
}

// serveConn runs one session: a reader goroutine pulls frames off the
// socket; this goroutine handles them in order and writes the responses.
// The split is what makes cancellation and drain work — the reader notices a
// dead client while a query is still executing, and drain can stop intake
// without abandoning a frame that already arrived.
func (s *Server) serveConn(conn net.Conn) {
	s.obsv.Add(CtrSessionsOpened, 1)
	span := s.obsv.Start("session")
	reqs := make(chan request)
	defer func() {
		// Runs after conn.Close below: the reader is unblocked, so draining
		// reqs here frees it if it was parked delivering a read-ahead frame.
		for range reqs {
		}
		span.End()
		s.obsv.Add(CtrSessionsClosed, 1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	defer conn.Close()

	ctx, cancel := context.WithCancel(s.hardCtx)
	defer cancel()
	ctx = obs.ContextWithSpan(ctx, span)

	go func() {
		defer close(reqs)
		for {
			typ, payload, err := wire.ReadFrame(conn)
			if err != nil {
				// During drain the failed read is the deadline poke from the
				// worker; in-flight work must finish, so leave ctx alone.
				// Otherwise the client is gone: abort the in-flight request.
				select {
				case <-s.drainCh:
				default:
					cancel()
				}
				return
			}
			s.obsv.Add(CtrRequests, 1)
			reqs <- request{typ, payload}
		}
	}()

	w := newSessionWriter(conn, s.cfg.WriteTimeout)
	for {
		// Prefer pending requests over the drain signal so a request that
		// raced the drain is served, not dropped. While requests are pending
		// their responses accumulate in the session writer; the flush in the
		// default arm below runs exactly when the worker would otherwise
		// block, so no response ever waits behind an idle socket.
		select {
		case r, ok := <-reqs:
			if !ok {
				w.flush()
				return
			}
			if !s.handle(ctx, w, r) {
				return
			}
		default:
			if w.flush() != nil {
				return
			}
			select {
			case r, ok := <-reqs:
				if !ok {
					w.flush()
					return
				}
				if !s.handle(ctx, w, r) {
					return
				}
			case <-s.drainCh:
				// Graceful drain: stop intake, then serve whatever the
				// reader already pulled off the socket before closing.
				conn.SetReadDeadline(time.Now())
				for r := range reqs {
					s.handle(ctx, w, r)
				}
				w.flush()
				return
			}
		}
	}
}

// draining reports whether drain has been signaled.
func (s *Server) isDraining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// handle serves one request and buffers its response on the session writer;
// false means the session is beyond saving (response write failed).
func (s *Server) handle(ctx context.Context, w *sessionWriter, r request) bool {
	began := s.obsv.Now()
	var typ byte
	var payload []byte
	switch r.typ {
	case wire.MsgPing:
		typ, payload = wire.MsgPong, nil
	case wire.MsgQuery:
		typ, payload = s.query(ctx, r.payload)
	case wire.MsgExec:
		typ, payload = s.exec(ctx, r.payload)
	case wire.MsgExplain:
		typ, payload = s.explain(ctx, r.payload)
	case wire.MsgObs:
		typ, payload = s.obsSnapshot()
	default:
		typ, payload = wire.MsgError, wire.EncodeError(wire.CodeInternal,
			fmt.Sprintf("unknown message type %#x", r.typ))
	}
	s.obsv.ObserveSince(HistRequest, began)
	if s.isDraining() {
		s.obsv.Add(CtrDrainServed, 1)
	}
	return w.writeFrame(typ, payload) == nil
}

// errResponse classifies err under the wire taxonomy.
func errResponse(err error) (byte, []byte) {
	return wire.MsgError, wire.EncodeError(wire.CodeFor(err), err.Error())
}

// admit runs the admission gate for one query/exec request.
func (s *Server) admit(ctx context.Context) (func(), error) {
	release, err := s.gate.Enter(ctx)
	if err != nil {
		if errors.Is(err, exec.ErrOverloaded) {
			s.obsv.Add(CtrOverloaded, 1)
		}
		return nil, err
	}
	return release, nil
}

// query answers one MsgQuery.
func (s *Server) query(ctx context.Context, payload []byte) (byte, []byte) {
	sql, err := wire.DecodeString(payload)
	if err != nil {
		return errResponse(fmt.Errorf("%w: %w", astdb.ErrParse, err))
	}
	release, err := s.admit(ctx)
	if err != nil {
		return errResponse(err)
	}
	defer release()
	ans, err := s.db.Query(ctx, sql)
	if err != nil {
		return errResponse(err)
	}
	m := &wire.Rows{
		Cols:     ans.Result.Cols,
		Kinds:    wire.InferKinds(ans.Result.Cols, ans.Result.Rows),
		Rows:     ans.Result.Rows,
		Mode:     ans.Result.Mode,
		AST:      ans.AST,
		CacheHit: ans.CacheHit,
		FellBack: ans.FellBack,
	}
	return wire.MsgRows, m.Encode()
}

// exec applies one MsgExec DML statement.
func (s *Server) exec(ctx context.Context, payload []byte) (byte, []byte) {
	sql, err := wire.DecodeString(payload)
	if err != nil {
		return errResponse(fmt.Errorf("%w: %w", astdb.ErrParse, err))
	}
	release, err := s.admit(ctx)
	if err != nil {
		return errResponse(err)
	}
	defer release()
	res, err := s.db.ExecStatement(ctx, sql)
	if res == nil {
		return errResponse(err)
	}
	// res non-nil with err non-nil means the statement applied but some
	// summary-table refresh degraded (those ASTs are stale, queries fall
	// back); the statement outcome is still success.
	var maint strings.Builder
	for _, st := range res.Stats {
		if maint.Len() > 0 {
			maint.WriteString("; ")
		}
		if st.Err != nil {
			fmt.Fprintf(&maint, "%s: degraded (%v)", st.AST, st.Err)
			continue
		}
		fmt.Fprintf(&maint, "%s: %s, %d delta rows", st.AST, st.Strategy, st.DeltaRows)
	}
	m := &wire.ExecOK{Table: res.Table, Affected: int64(res.Affected), Maintenance: maint.String()}
	return wire.MsgExecOK, m.Encode()
}

// explain renders the EXPLAIN report for a SELECT, or the maintenance
// routing for a DELETE/UPDATE.
func (s *Server) explain(ctx context.Context, payload []byte) (byte, []byte) {
	sql, err := wire.DecodeString(payload)
	if err != nil {
		return errResponse(fmt.Errorf("%w: %w", astdb.ErrParse, err))
	}
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		return errResponse(fmt.Errorf("%w: %w", astdb.ErrParse, err))
	}
	if ex, ok := stmt.(*parser.ExplainStmt); ok {
		if ex.DML != nil {
			stmt, sql = ex.DML, ex.DML.SQL()
		} else {
			stmt, sql = ex.Query, ex.Query.SQL()
		}
	}
	var text strings.Builder
	switch stmt.(type) {
	case *parser.DeleteStmt, *parser.UpdateStmt:
		rep, err := s.db.ExplainDML(ctx, sql)
		if err != nil {
			return errResponse(err)
		}
		text.WriteString(rep.Render())
	default:
		rep, err := s.db.Explain(ctx, sql)
		if err != nil {
			return errResponse(err)
		}
		rep.Render(&text)
	}
	return wire.MsgText, wire.EncodeString(text.String())
}

// obsSnapshot renders the engine observer's snapshot.
func (s *Server) obsSnapshot() (byte, []byte) {
	if !s.obsv.Enabled() {
		return wire.MsgText, wire.EncodeString("observability disabled (start the server with -obs)\n")
	}
	var text strings.Builder
	s.db.Snapshot().Render(&text)
	return wire.MsgText, wire.EncodeString(text.String())
}

// Shutdown drains the server: the listener closes, idle sessions are
// released, and requests already received are served to completion. When ctx
// expires first, in-flight work is canceled (it surfaces as typed canceled
// errors to the affected clients) and connections are force-closed; the
// error then reports how much work was cut short. A second Shutdown waits on
// the same drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
		if s.ln != nil {
			s.ln.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.hardCancel()
		s.mu.Lock()
		open := len(s.conns)
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("server: drain deadline expired with %d sessions still open: %w", open, ctx.Err())
	}
}
