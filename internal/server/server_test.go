package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/astdb"
	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/sqltypes"
	"repro/internal/wire"
	"repro/internal/workload"
)

// testEnv starts a server over a small star-schema engine with one summary
// table and returns the engine, server, and dial address. The server is shut
// down at test end.
func testEnv(t *testing.T, cfg Config, opts ...astdb.Option) (*astdb.Engine, *Server, string) {
	t.Helper()
	cat := catalog.New()
	opts = append([]astdb.Option{astdb.WithObserver(obs.New())}, opts...)
	db, err := astdb.Open(cat, opts...)
	if err != nil {
		t.Fatal(err)
	}
	workload.Schema(cat)
	workload.Load(cat, db.Store(), workload.StarConfig{NumTrans: 400, Seed: 11})
	if _, _, err := db.CreateSummaryTable(context.Background(),
		"byloc", `select flid, count(*) as cnt, sum(qty) as sq from trans group by flid`); err != nil {
		t.Fatal(err)
	}
	s := New(db, cfg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return db, s, addr.String()
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// roundTrip sends one request frame and reads the response.
func roundTrip(t *testing.T, conn net.Conn, typ byte, payload []byte) (byte, []byte) {
	t.Helper()
	if err := wire.WriteFrame(conn, typ, payload); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	rtyp, rp, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return rtyp, rp
}

func TestServerRoundTrip(t *testing.T) {
	db, _, addr := testEnv(t, Config{})
	conn := dial(t, addr)
	ctx := context.Background()

	t.Run("ping", func(t *testing.T) {
		if typ, _ := roundTrip(t, conn, wire.MsgPing, nil); typ != wire.MsgPong {
			t.Fatalf("ping answered %#x", typ)
		}
	})

	const q = `select flid, count(*) as cnt from trans group by flid`
	t.Run("query-identical-to-in-process", func(t *testing.T) {
		typ, p := roundTrip(t, conn, wire.MsgQuery, wire.EncodeString(q))
		if typ != wire.MsgRows {
			t.Fatalf("query answered %#x: %s", typ, p)
		}
		got, err := wire.DecodeRows(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.AST != "byloc" || got.AST != want.AST {
			t.Fatalf("routing: wire AST %q, in-process %q", got.AST, want.AST)
		}
		if len(got.Rows) != len(want.Result.Rows) {
			t.Fatalf("wire %d rows, in-process %d", len(got.Rows), len(want.Result.Rows))
		}
		for r := range got.Rows {
			for c := range got.Rows[r] {
				if !sqltypes.Identical(got.Rows[r][c], want.Result.Rows[r][c]) {
					t.Fatalf("row %d col %d: %v != %v", r, c, got.Rows[r][c], want.Result.Rows[r][c])
				}
			}
		}
		if got.Kinds[0] != sqltypes.KindInt || got.Kinds[1] != sqltypes.KindInt {
			t.Fatalf("inferred kinds %v", got.Kinds)
		}
	})

	t.Run("exec-insert-and-delete", func(t *testing.T) {
		typ, p := roundTrip(t, conn, wire.MsgExec,
			wire.EncodeString(`insert into loc values (9001, 'Nowhere', 'XX', 'Utopia')`))
		if typ != wire.MsgExecOK {
			t.Fatalf("insert answered %#x: %s", typ, p)
		}
		ok, err := wire.DecodeExecOK(p)
		if err != nil {
			t.Fatal(err)
		}
		if ok.Table != "loc" || ok.Affected != 1 {
			t.Fatalf("insert result %+v", ok)
		}
		typ, p = roundTrip(t, conn, wire.MsgExec, wire.EncodeString(`delete from loc where lid = 9001`))
		if typ != wire.MsgExecOK {
			t.Fatalf("delete answered %#x: %s", typ, p)
		}
		if ok, _ = wire.DecodeExecOK(p); ok.Affected != 1 {
			t.Fatalf("delete result %+v", ok)
		}
	})

	t.Run("exec-maintenance-rendered", func(t *testing.T) {
		typ, p := roundTrip(t, conn, wire.MsgExec,
			wire.EncodeString(`insert into trans values (99001, 1, 1, 1, '1999-01-01', 3, 1.5, 0.0)`))
		if typ != wire.MsgExecOK {
			t.Fatalf("insert answered %#x: %s", typ, p)
		}
		ok, err := wire.DecodeExecOK(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(ok.Maintenance, "byloc") {
			t.Fatalf("maintenance text lacks AST name: %q", ok.Maintenance)
		}
	})

	t.Run("explain-select-and-dml", func(t *testing.T) {
		typ, p := roundTrip(t, conn, wire.MsgExplain, wire.EncodeString(q))
		if typ != wire.MsgText {
			t.Fatalf("explain answered %#x: %s", typ, p)
		}
		text, err := wire.DecodeString(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(text, "byloc") {
			t.Fatalf("explain text lacks routing: %q", text)
		}
		typ, p = roundTrip(t, conn, wire.MsgExplain, wire.EncodeString(`delete from trans where qty < 0`))
		if typ != wire.MsgText {
			t.Fatalf("explain dml answered %#x: %s", typ, p)
		}
		if text, _ = wire.DecodeString(p); !strings.Contains(text, "byloc") {
			t.Fatalf("dml explain lacks maintenance routing: %q", text)
		}
	})

	t.Run("obs-snapshot", func(t *testing.T) {
		typ, p := roundTrip(t, conn, wire.MsgObs, nil)
		if typ != wire.MsgText {
			t.Fatalf("obs answered %#x", typ)
		}
		text, err := wire.DecodeString(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(text, CtrRequests) {
			t.Fatalf("snapshot lacks server counters: %q", text)
		}
	})

	t.Run("typed-errors", func(t *testing.T) {
		for _, tc := range []struct {
			sql  string
			want error
		}{
			{`select nope from`, astdb.ErrParse},
			{`select x from ghost`, astdb.ErrUnknownTable},
		} {
			typ, p := roundTrip(t, conn, wire.MsgQuery, wire.EncodeString(tc.sql))
			if typ != wire.MsgError {
				t.Fatalf("%q answered %#x", tc.sql, typ)
			}
			werr, err := wire.DecodeError(p)
			if err != nil {
				t.Fatal(err)
			}
			if !errors.Is(werr, tc.want) {
				t.Fatalf("%q classified as %v, want %v", tc.sql, werr.Code, tc.want)
			}
		}
		// DML against the summary table is write-protected.
		typ, p := roundTrip(t, conn, wire.MsgExec, wire.EncodeString(`delete from byloc`))
		werr, _ := wire.DecodeError(p)
		if typ != wire.MsgError || !errors.Is(werr, astdb.ErrWriteProtected) {
			t.Fatalf("summary DML answered %#x %v", typ, werr)
		}
	})

	t.Run("unknown-message-type", func(t *testing.T) {
		typ, p := roundTrip(t, conn, 0x42, nil)
		werr, _ := wire.DecodeError(p)
		if typ != wire.MsgError || werr == nil || werr.Code != wire.CodeInternal {
			t.Fatalf("unknown type answered %#x %v", typ, werr)
		}
		// The session survives a bad request.
		if typ, _ := roundTrip(t, conn, wire.MsgPing, nil); typ != wire.MsgPong {
			t.Fatalf("session dead after bad request: %#x", typ)
		}
	})
}

func TestSessionCapRejects(t *testing.T) {
	_, s, addr := testEnv(t, Config{MaxSessions: 1})
	conn := dial(t, addr)
	if typ, _ := roundTrip(t, conn, wire.MsgPing, nil); typ != wire.MsgPong {
		t.Fatal("first session not admitted")
	}
	second := dial(t, addr)
	second.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, p, err := wire.ReadFrame(second)
	if err != nil {
		t.Fatal(err)
	}
	werr, _ := wire.DecodeError(p)
	if typ != wire.MsgError || !errors.Is(werr, astdb.ErrOverloaded) {
		t.Fatalf("over-cap session answered %#x %v", typ, werr)
	}
	if s.obsv.Counter(CtrSessionsRejected) != 1 {
		t.Fatalf("rejected counter %d", s.obsv.Counter(CtrSessionsRejected))
	}
}

func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	_, s, addr := testEnv(t, Config{MaxConcurrent: 1, QueueDepth: 0})
	// Occupy the only execution slot from the test, simulating a long query.
	release, err := s.gate.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	conn := dial(t, addr)
	typ, p := roundTrip(t, conn, wire.MsgQuery, wire.EncodeString(`select count(*) as c from trans`))
	werr, _ := wire.DecodeError(p)
	if typ != wire.MsgError || !errors.Is(werr, astdb.ErrOverloaded) {
		t.Fatalf("saturated query answered %#x %v", typ, werr)
	}
	// Ungated requests still work, and the session survived the rejection.
	if typ, _ := roundTrip(t, conn, wire.MsgPing, nil); typ != wire.MsgPong {
		t.Fatal("session dead after admission rejection")
	}
	release()
	typ, _ = roundTrip(t, conn, wire.MsgQuery, wire.EncodeString(`select count(*) as c from trans`))
	if typ != wire.MsgRows {
		t.Fatalf("query after release answered %#x", typ)
	}
	if s.obsv.Counter(CtrOverloaded) != 1 {
		t.Fatalf("overloaded counter %d", s.obsv.Counter(CtrOverloaded))
	}
}

// TestDisconnectCancelsQueuedRequest proves the client-disconnect → session
// context cancellation path: a request parked in the admission queue aborts
// as soon as its client hangs up, instead of holding the queue slot.
func TestDisconnectCancelsQueuedRequest(t *testing.T) {
	_, s, addr := testEnv(t, Config{MaxConcurrent: 1, QueueDepth: 4})
	release, err := s.gate.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	conn := dial(t, addr)
	if err := wire.WriteFrame(conn, wire.MsgQuery, wire.EncodeString(`select count(*) as c from trans`)); err != nil {
		t.Fatal(err)
	}
	// Wait until the request is waiting on the gate, then hang up.
	deadline := time.Now().Add(10 * time.Second)
	for s.gate.Waiting() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	conn.Close()
	for s.obsv.Counter(CtrSessionsClosed) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session still open after disconnect; %d waiting", s.gate.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	if w := s.gate.Waiting(); w != 0 {
		t.Fatalf("%d requests still queued after disconnect", w)
	}
}

// TestGracefulDrainServesInFlight is the zero-dropped-queries drain contract
// at full width: 512 concurrent sessions each send one query, Shutdown fires
// only after the server has read all of them, and every session must still
// receive a complete response — none may be cut off by the drain.
func TestGracefulDrainServesInFlight(t *testing.T) {
	const sessions = 512
	_, s, addr := testEnv(t, Config{MaxConcurrent: 8, QueueDepth: sessions})

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	conns := make([]net.Conn, sessions)
	for i := range conns {
		c, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c net.Conn) {
			defer wg.Done()
			q := fmt.Sprintf(`select flid, count(*) as cnt from trans where qty > %d group by flid`, i%5)
			if err := wire.WriteFrame(c, wire.MsgQuery, wire.EncodeString(q)); err != nil {
				errs <- fmt.Errorf("session %d write: %w", i, err)
				return
			}
			c.SetReadDeadline(time.Now().Add(60 * time.Second))
			typ, p, err := wire.ReadFrame(c)
			if err != nil {
				errs <- fmt.Errorf("session %d dropped: %w", i, err)
				return
			}
			if typ != wire.MsgRows {
				errs <- fmt.Errorf("session %d answered %#x: %s", i, typ, p)
				return
			}
			if _, err := wire.DecodeRows(p); err != nil {
				errs <- fmt.Errorf("session %d bad rows: %w", i, err)
			}
		}(i, c)
	}

	// Drain only once every request has been read off its socket, so the
	// contract under test is unambiguous: all 512 are in flight.
	deadline := time.Now().Add(60 * time.Second)
	for s.obsv.Counter(CtrRequests) < sessions {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests read before deadline", s.obsv.Counter(CtrRequests), sessions)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.Fatalf("in-flight queries dropped during drain")
	}
	// New connections are refused after drain.
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		c.Close()
		t.Fatal("listener still accepting after drain")
	}
}

// TestShutdownIdleSessions: sessions with no request in flight are released
// promptly by the drain, not held until a timeout.
func TestShutdownIdleSessions(t *testing.T) {
	_, s, addr := testEnv(t, Config{})
	for i := 0; i < 8; i++ {
		dial(t, addr)
	}
	// Wait for the server to register all sessions before draining.
	deadline := time.Now().Add(10 * time.Second)
	for s.obsv.Counter(CtrSessionsOpened) < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d sessions opened", s.obsv.Counter(CtrSessionsOpened))
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("idle drain failed: %v", err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("idle drain took %v", took)
	}
	if opened, closed := s.obsv.Counter(CtrSessionsOpened), s.obsv.Counter(CtrSessionsClosed); opened != closed {
		t.Fatalf("%d sessions opened, %d closed", opened, closed)
	}
}
