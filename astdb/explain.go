package astdb

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qgm"
)

// Report is the outcome of Explain: per-candidate matching decisions, the
// chosen plan, and row counts. Its rendering is deterministic for a given
// catalog, data, and query — it names only original query/AST box labels and
// compensation box kinds, never generated compensation labels — so golden
// tests can lock the format.
type Report struct {
	SQL        string
	Candidates []Candidate

	// CandidatesPruned counts the usable candidates the signature index would
	// refuse before full matching on the production path (0 when pruning is
	// disabled via Options.NoPrune).
	CandidatesPruned int

	// ChosenAST names the summary table the cost-based rewrite picked; ""
	// means the query runs on base tables.
	ChosenAST     string
	ChosenPattern string
	// EstBaseRows / EstRewrittenRows are the scan-cost estimates for the
	// chosen candidate (zero when no candidate was chosen).
	EstBaseRows      int
	EstRewrittenRows int

	// ActualRows counts the rows the chosen plan produced; ExecError records
	// an execution failure instead. ExecMode reports how the executor
	// evaluated the plan: "vectorized" when at least one box ran through the
	// vectorized kernels, "compiled-row" for the compiled row path,
	// "interpreted" under Config.Interpret.
	ActualRows int
	ExecMode   string
	ExecError  string
}

// Candidate is one summary table's EXPLAIN entry.
type Candidate struct {
	AST    string
	Status string // "fresh", "stale", or "quarantined"
	Usable bool   // false when status gates it out of matching
	Pruned bool   // the signature index would skip this candidate pre-match

	Matched      bool
	Exact        bool
	Pattern      string // paper pattern ("§4.1.1" … "§5.2") when matched
	MatchedBox   string // query box label the AST can replace
	Compensation string // compensation box kinds, or "projection only"

	// FailReason is the decisive failure for unmatched candidates: the last
	// rejected pair's reason, naming the paper condition that failed.
	FailReason string
	FailedPair string // "subsumee vs subsumer" box labels of that rejection

	// BaseRows / RewrittenRows are the scan-cost estimates (rows read by the
	// replaced subtree vs by the summary table plus rejoins) when matched.
	BaseRows      int
	RewrittenRows int

	Trace []core.TraceEntry
}

// Explain runs the full rewrite decision for one SQL query and reports it:
// every registered summary table is matched against the query with tracing on
// (candidates in name order), the cost-based selection picks a plan exactly as
// Query would, and the chosen plan is executed for its actual row count.
// Explain bypasses the plan cache and never mutates engine state beyond
// counters.
func (e *Engine) Explain(ctx context.Context, sql string) (*Report, error) {
	span := e.startSpan(ctx, "explain")
	defer span.End()
	ctx = obs.ContextWithSpan(ctx, span)

	rep := &Report{SQL: sql}
	// The query signature is computed from a pristine graph (matching below
	// mutates its copies with compensation boxes) and reused per candidate.
	var qsig *catalog.Signature
	if !e.rw.Options().NoPrune {
		g, err := e.parse(span, sql)
		if err != nil {
			return nil, err
		}
		qsig = core.ComputeSignature(e.cat, g)
	}
	for _, ca := range sortedByName(e.ASTs()) {
		// Fresh graph per candidate: matching allocates compensation boxes in
		// the query graph, so candidates cannot share one.
		g, err := e.parse(span, sql)
		if err != nil {
			return nil, err
		}
		cand := e.explainCandidate(g, ca)
		// Report what the production path's signature index would decide for
		// this candidate before full matching (EXPLAIN itself always matches,
		// so pruned candidates still show their trace).
		if cand.Usable && qsig != nil && !e.cat.AdmitsAST(ca.Def.Name, qsig, e.rw.Options().AllowStale) {
			cand.Pruned = true
			rep.CandidatesPruned++
		}
		rep.Candidates = append(rep.Candidates, cand)
	}

	// Reproduce Query's plan choice: cost-based selection over usable
	// candidates, validated, falling back to the base plan.
	g, err := e.parse(span, sql)
	if err != nil {
		return nil, err
	}
	clone := g.Clone()
	plan := g
	if res := e.rw.RewriteBestCostCtx(ctx, clone, e.ASTs(), e.store); res != nil {
		if clone.Validate() == nil {
			plan = clone
			rep.ChosenAST = res.AST.Def.Name
			rep.ChosenPattern = res.Match.Pattern
			rep.EstBaseRows, rep.EstRewrittenRows = e.rw.CostEstimate(res.Match, res.AST, e.store)
		}
	}
	if r, err := e.runPlan(ctx, plan); err != nil {
		rep.ExecError = err.Error()
	} else {
		rep.ActualRows = len(r.Rows)
		rep.ExecMode = r.Mode
	}
	return rep, nil
}

// explainCandidate matches one summary table against a throwaway graph with
// tracing enabled and summarizes the decision.
func (e *Engine) explainCandidate(g *qgm.Graph, ca *core.CompiledAST) Candidate {
	c := Candidate{AST: ca.Def.Name, Status: "fresh"}
	st := e.cat.Status(ca.Def.Name)
	switch {
	case st.Quarantined:
		c.Status = "quarantined"
	case st.Stale:
		c.Status = "stale"
	}
	c.Usable = e.cat.Usable(ca.Def.Name, e.rw.Options().AllowStale)

	matches, trace := e.rw.ExplainMatches(g, ca)
	c.Trace = trace
	if len(matches) == 0 {
		c.FailReason = "no candidate box pairs"
		for i := len(trace) - 1; i >= 0; i-- {
			if !trace[i].Matched {
				c.FailReason = trace[i].Reason
				c.FailedPair = trace[i].Subsumee + " vs " + trace[i].Subsumer
				break
			}
		}
		return c
	}
	// Summarize the candidate's best root match by cost gain (the criterion
	// the cost-based selection applies), ties to the first established.
	best := matches[0]
	bestGain := gainOf(e, best, ca)
	for _, mm := range matches[1:] {
		if g := gainOf(e, mm, ca); g > bestGain {
			best, bestGain = mm, g
		}
	}
	c.Matched = true
	c.Exact = best.Exact
	c.Pattern = best.Pattern
	c.MatchedBox = best.Subsumee.Label
	c.Compensation = compSummary(best)
	c.BaseRows, c.RewrittenRows = e.rw.CostEstimate(best, ca, e.store)
	return c
}

func gainOf(e *Engine, mm *core.Match, ca *core.CompiledAST) int {
	base, rewritten := e.rw.CostEstimate(mm, ca, e.store)
	return base - rewritten
}

// compSummary names a match's compensation by box kinds only — generated
// compensation labels carry a global counter and would break determinism.
func compSummary(mm *core.Match) string {
	if mm.Exact {
		return "projection only"
	}
	kinds := make([]string, len(mm.Stack))
	for i, b := range mm.Stack {
		kinds[i] = b.Kind.String()
	}
	return strings.Join(kinds, " → ")
}

// Render writes the report as the deterministic human-readable EXPLAIN text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "EXPLAIN %s\n", strings.Join(strings.Fields(r.SQL), " "))
	fmt.Fprintf(w, "== candidates (%d) ==\n", len(r.Candidates))
	for _, c := range r.Candidates {
		status := c.Status
		if !c.Usable {
			status += ", unusable"
		}
		fmt.Fprintf(w, "%s [%s]\n", c.AST, status)
		for _, te := range c.Trace {
			mark := "✗"
			if te.Matched {
				mark = "✓"
			}
			fmt.Fprintf(w, "  %s %s vs %s: %s\n", mark, te.Subsumee, te.Subsumer, te.Reason)
		}
		if c.Matched {
			fmt.Fprintf(w, "  matched: pattern %s at %s (compensation: %s)\n", c.Pattern, c.MatchedBox, c.Compensation)
			fmt.Fprintf(w, "  estimated rows: base=%d rewritten=%d\n", c.BaseRows, c.RewrittenRows)
		} else if c.FailedPair != "" {
			fmt.Fprintf(w, "  rejected: %s (%s)\n", c.FailReason, c.FailedPair)
		} else {
			fmt.Fprintf(w, "  rejected: %s\n", c.FailReason)
		}
	}
	fmt.Fprintf(w, "candidates pruned: %d\n", r.CandidatesPruned)
	fmt.Fprintln(w, "== plan ==")
	if r.ChosenAST != "" {
		fmt.Fprintf(w, "reads summary table %s (pattern %s), estimated rows: base=%d rewritten=%d\n",
			r.ChosenAST, r.ChosenPattern, r.EstBaseRows, r.EstRewrittenRows)
	} else {
		fmt.Fprintln(w, "reads base tables (no summary table is estimated cheaper)")
	}
	if r.ExecError != "" {
		fmt.Fprintf(w, "execution failed: %s\n", r.ExecError)
	} else {
		fmt.Fprintf(w, "execution: %s, actual rows: %d\n", r.ExecMode, r.ActualRows)
	}
}

// String renders the report to a string.
func (r *Report) String() string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}
