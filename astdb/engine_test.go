package astdb_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/astdb"
	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/sqltypes"
)

// openTinyDB builds a fresh engine with one two-column fact table through the
// public facade only.
func openTinyDB(t *testing.T, opts ...astdb.Option) *astdb.Engine {
	t.Helper()
	db, err := astdb.Open(catalog.New(), opts...)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := db.CreateTable(&catalog.Table{
		Name: "sales",
		Columns: []catalog.Column{
			{Name: "region", Type: sqltypes.KindString},
			{Name: "amount", Type: sqltypes.KindInt},
		},
	}); err != nil {
		t.Fatalf("create table: %v", err)
	}
	rows := [][]sqltypes.Value{
		{sqltypes.NewString("west"), sqltypes.NewInt(10)},
		{sqltypes.NewString("west"), sqltypes.NewInt(5)},
		{sqltypes.NewString("east"), sqltypes.NewInt(7)},
	}
	if _, err := db.Insert(context.Background(), "sales", rows); err != nil {
		t.Fatalf("insert: %v", err)
	}
	return db
}

func TestEngineLifecycle(t *testing.T) {
	db := openTinyDB(t, astdb.WithObserver(obs.New()))
	ctx := context.Background()

	ca, n, err := db.CreateSummaryTable(ctx, "byregion",
		"select region, sum(amount) as total, count(*) as cnt from sales group by region")
	if err != nil {
		t.Fatalf("create summary table: %v", err)
	}
	if n != 2 || ca.Def.Name != "byregion" {
		t.Fatalf("materialized %d rows for %q, want 2 for byregion", n, ca.Def.Name)
	}
	if got := len(db.ASTs()); got != 1 {
		t.Fatalf("ASTs() = %d entries, want 1", got)
	}

	// First query: cache miss, served from the summary table.
	q := "select region, sum(amount) as total from sales group by region"
	ans, err := db.Query(ctx, q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if ans.AST != "byregion" || ans.CacheHit {
		t.Fatalf("first query: ast=%q hit=%t, want byregion/miss", ans.AST, ans.CacheHit)
	}
	if len(ans.Result.Rows) != 2 {
		t.Fatalf("query returned %d rows, want 2", len(ans.Result.Rows))
	}
	// Second query: plan-cache hit.
	ans2, err := db.Query(ctx, q)
	if err != nil {
		t.Fatalf("repeat query: %v", err)
	}
	if ans2.AST != "byregion" || !ans2.CacheHit {
		t.Fatalf("repeat query: ast=%q hit=%t, want byregion/hit", ans2.AST, ans2.CacheHit)
	}

	// Insert flows through maintenance and keeps the summary table fresh.
	stats, err := db.Insert(ctx, "sales", [][]sqltypes.Value{
		{sqltypes.NewString("east"), sqltypes.NewInt(3)},
	})
	if err != nil {
		t.Fatalf("maintained insert: %v", err)
	}
	if len(stats) != 1 || stats[0].Err != nil {
		t.Fatalf("insert stats = %+v, want one clean refresh", stats)
	}
	ans3, err := db.Query(ctx, q)
	if err != nil {
		t.Fatalf("post-insert query: %v", err)
	}
	if ans3.CacheHit {
		t.Fatal("post-insert query hit a stale cached plan (fingerprint failed to change)")
	}
	astdb.SortRows(ans3.Result.Rows)
	// east total must now be 10.
	found := false
	for _, r := range ans3.Result.Rows {
		if r[0].String() == "east" && r[1].String() == "10" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-insert totals wrong: %v", ans3.Result.Rows)
	}

	// A malformed row is a hard error before any maintenance runs.
	if _, err := db.Insert(ctx, "sales", [][]sqltypes.Value{{sqltypes.NewInt(1)}}); err == nil {
		t.Fatal("arity-mismatched insert must fail")
	}
	if st := db.Catalog().Status("byregion"); st.Stale {
		t.Fatal("rejected insert must not mark the summary table stale")
	}

	// Refresh recomputes and reports.
	rstats, err := db.Refresh(ctx)
	if err != nil || len(rstats) != 1 {
		t.Fatalf("refresh: stats=%+v err=%v", rstats, err)
	}

	// The snapshot saw the whole pipeline.
	snap := db.Snapshot()
	if snap.Counters["core.plancache.hits"] < 1 || snap.Counters["exec.runs"] < 3 {
		t.Errorf("snapshot missing pipeline counters: %v", snap.Counters)
	}
}

// TestQueryFallsBackWhenRewrittenPlanFails injects a fault into the rewritten
// plan's execution and requires the facade to answer from base tables, mark
// the summary table stale, and surface the degradation — never the failure.
func TestQueryFallsBackWhenRewrittenPlanFails(t *testing.T) {
	db := openTinyDB(t)
	ctx := context.Background()
	if _, _, err := db.CreateSummaryTable(ctx, "byregion",
		"select region, sum(amount) as total, count(*) as cnt from sales group by region"); err != nil {
		t.Fatal(err)
	}
	// Drop the materialized table behind the engine's back: the rewritten
	// plan now fails at scan time.
	db.Store().Drop("byregion")

	q := "select region, sum(amount) as total from sales group by region"
	ans, err := db.Query(ctx, q)
	if err != nil {
		t.Fatalf("query must degrade, got error: %v", err)
	}
	if !ans.FellBack {
		t.Fatalf("expected fallback answer, got %+v", ans)
	}
	if len(ans.Result.Rows) != 2 {
		t.Fatalf("fallback returned %d rows, want 2", len(ans.Result.Rows))
	}
	if st := db.Catalog().Status("byregion"); !st.Stale {
		t.Error("failed summary table must be marked stale")
	}
}

// TestDegradationEventsAreSequenced verifies the facade surfaces sequenced
// degradation events: a match panic (injected fault) is recorded with a
// monotonic sequence number shared with the observer's event stream.
func TestDegradationEventsAreSequenced(t *testing.T) {
	o := obs.New()
	db := openTinyDB(t, astdb.WithObserver(o))
	ctx := context.Background()
	if _, _, err := db.CreateSummaryTable(ctx, "byregion",
		"select region, sum(amount) as total, count(*) as cnt from sales group by region"); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(1)
	defer faultinject.Disable()
	faultinject.Set("core.match:byregion", faultinject.Fault{Err: errors.New("injected match fault")})

	if _, err := db.Query(ctx, "select region, sum(amount) as total from sales group by region"); err != nil {
		t.Fatalf("query must degrade to base tables: %v", err)
	}
	events, dropped := db.DegradationEvents()
	if dropped != 0 || len(events) == 0 {
		t.Fatalf("expected degradation events, got %d (dropped %d)", len(events), dropped)
	}
	var last uint64
	for _, ev := range events {
		if ev.Seq <= last {
			t.Fatalf("sequence numbers not monotonic: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
		if !strings.Contains(ev.Err.Error(), "injected match fault") {
			t.Fatalf("unexpected degradation: %v", ev.Err)
		}
	}
	// The same sequence numbers appear in the observer's event stream.
	snap := o.Snapshot()
	found := false
	for _, ev := range snap.Events {
		if ev.Kind == "core.degraded" && ev.Seq == events[0].Seq {
			found = true
		}
	}
	if !found {
		t.Errorf("observer event stream missing degradation seq %d: %+v", events[0].Seq, snap.Events)
	}
}
