package astdb_test

// Tests of the WithVerifyPlans seam: verification defaults off (the
// zero-overhead contract), and turning it on both checks parsed graphs and
// threads the deep checker into the rewriter without changing answers.

import (
	"context"
	"testing"

	"repro/astdb"
)

func TestVerifyPlansDefaultsOff(t *testing.T) {
	db := openTinyDB(t)
	if db.Rewriter().Options().VerifyPlans {
		t.Fatal("VerifyPlans must default to off (zero-overhead contract)")
	}
}

func TestVerifyPlansQueriesStillServed(t *testing.T) {
	db := openTinyDB(t, astdb.WithVerifyPlans(true))
	ctx := context.Background()
	if !db.Rewriter().Options().VerifyPlans {
		t.Fatal("WithVerifyPlans(true) did not reach the rewriter options")
	}
	if _, _, err := db.CreateSummaryTable(ctx, "byregion",
		"select region, sum(amount) as total, count(*) as cnt from sales group by region"); err != nil {
		t.Fatalf("create summary table: %v", err)
	}
	ans, err := db.Query(ctx, "select region, sum(amount) as total from sales group by region")
	if err != nil {
		t.Fatalf("query under verification: %v", err)
	}
	if ans.AST != "byregion" {
		t.Fatalf("verified rewrite discarded: served from %q, want byregion", ans.AST)
	}
	if len(db.Degradations()) != 0 {
		t.Fatal("sound plans must not be recorded as degradations under verification")
	}
}
