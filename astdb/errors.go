package astdb

import (
	"errors"
	"fmt"

	"repro/internal/exec"
	"repro/internal/qgm"
)

// Typed error surface of the facade. Every error an Engine method returns
// matches at most one of these sentinels under errors.Is, so out-of-process
// consumers — the wire server and the database/sql driver — can map failures
// to protocol error codes without importing internal packages or matching
// message text. The sentinels classify; the wrapped error keeps the detail.
var (
	// ErrBudgetExceeded marks a run that materialized more rows than
	// Config.MaxRows allows.
	ErrBudgetExceeded = exec.ErrBudgetExceeded
	// ErrCanceled marks a run cut short by context cancellation or the
	// Config.Timeout deadline.
	ErrCanceled = exec.ErrCanceled
	// ErrOverloaded marks a request rejected by admission control: every
	// execution slot is busy and the wait queue is full.
	ErrOverloaded = exec.ErrOverloaded
	// ErrParse marks a statement that failed to parse, bind, or type-check.
	ErrParse = errors.New("astdb: statement does not compile")
	// ErrUnknownTable marks a statement naming a table the catalog does not
	// know.
	ErrUnknownTable = errors.New("astdb: unknown table")
	// ErrWriteProtected marks DML targeting a summary table: materializations
	// are system-maintained, and mutating one directly would silently break
	// the freshness contract.
	ErrWriteProtected = errors.New("astdb: summary table is write-protected")
)

// compileError classifies a parse/build failure under the typed surface:
// unknown-table failures (a semantic condition callers routinely probe for)
// keep their own sentinel, everything else — lexer errors, unknown columns,
// type mismatches — is an ErrParse. The original error stays in the chain.
func compileError(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, qgm.ErrUnknownTable) {
		return fmt.Errorf("%w: %w", ErrUnknownTable, err)
	}
	return fmt.Errorf("%w: %w", ErrParse, err)
}
