package astdb_test

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/astdb"
	"repro/internal/bench"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenScale keeps the synthetic star schema small enough for fast tests
// while producing non-trivial row-count estimates.
const goldenScale = 1500

// explainEngine builds a facade over the paper's star schema with exactly one
// summary table registered, so each golden report stays focused.
func explainEngine(t *testing.T, astName string) *astdb.Engine {
	t.Helper()
	env := bench.NewEnvDefault(goldenScale)
	if _, err := env.RegisterAST(astName, bench.ASTDefs[astName]); err != nil {
		t.Fatalf("register %s: %v", astName, err)
	}
	return env.DB()
}

// TestExplainGolden locks the EXPLAIN report format for three paper
// scenarios: a clean match (Figure 2), a semantic rejection whose failing
// condition must be named (Table 1), and a match needing rejoin compensation
// (Figure 8).
func TestExplainGolden(t *testing.T) {
	cases := []struct {
		name  string
		query string
		ast   string
	}{
		{"clean_match_q1_ast1", "q1", "ast1"},
		{"rejected_qbad_astbad", "qbad", "astbad"},
		{"rejoin_q7_ast7", "q7", "ast7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := explainEngine(t, tc.ast)
			rep, err := db.Explain(context.Background(), bench.Queries[tc.query])
			if err != nil {
				t.Fatalf("explain: %v", err)
			}
			got := rep.String()

			// The report must be reproducible run to run (matching mutates
			// throwaway graphs only; compensation labels never leak in).
			rep2, err := db.Explain(context.Background(), bench.Queries[tc.query])
			if err != nil {
				t.Fatalf("explain (second run): %v", err)
			}
			if got != rep2.String() {
				t.Fatalf("EXPLAIN is not deterministic:\nfirst:\n%s\nsecond:\n%s", got, rep2.String())
			}

			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to regenerate): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestExplainNamesFailingCondition pins the report semantics the golden files
// rely on: the rejected candidate must name the paper condition that failed,
// and the rejoin case must report a compensation.
func TestExplainNamesFailingCondition(t *testing.T) {
	db := explainEngine(t, "astbad")
	rep, err := db.Explain(context.Background(), bench.Queries["qbad"])
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChosenAST != "" {
		t.Fatalf("qbad must not rewrite against astbad; chose %q", rep.ChosenAST)
	}
	if len(rep.Candidates) != 1 || rep.Candidates[0].Matched {
		t.Fatalf("expected one unmatched candidate, got %+v", rep.Candidates)
	}
	if !strings.Contains(rep.Candidates[0].FailReason, "condition 2") {
		t.Errorf("rejection must name the failing condition, got %q", rep.Candidates[0].FailReason)
	}

	db7 := explainEngine(t, "ast7")
	rep7, err := db7.Explain(context.Background(), bench.Queries["q7"])
	if err != nil {
		t.Fatal(err)
	}
	if rep7.ChosenAST != "ast7" {
		t.Fatalf("q7 should choose ast7, chose %q", rep7.ChosenAST)
	}
	c := rep7.Candidates[0]
	if !c.Matched || c.Compensation == "" || c.Compensation == "projection only" {
		t.Errorf("q7/ast7 must match with a real compensation, got %+v", c)
	}
	if rep7.EstBaseRows <= rep7.EstRewrittenRows {
		t.Errorf("chosen rewrite must be estimated cheaper: base=%d rewritten=%d",
			rep7.EstBaseRows, rep7.EstRewrittenRows)
	}
}
