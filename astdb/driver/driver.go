// Package driver is a database/sql driver for the astdb wire protocol, so
// the standard library's pooling, retry, and scanning conventions work
// against a running astserve:
//
//	db, err := sql.Open("astdb", "127.0.0.1:5433")
//	rows, err := db.QueryContext(ctx, "select flid, sum(qty) from trans group by flid")
//
// The DSN is "host:port", optionally prefixed "astdb://" and optionally
// carrying "?dial_timeout=5s".
//
// Contract notes, in database/sql terms:
//
//   - One driver.Conn is one wire session. The protocol is strict
//     request/response, so a Conn serves one statement at a time — which is
//     exactly the access pattern database/sql guarantees per Conn.
//   - Placeholders are ordinal "?" only, interpolated client-side into SQL
//     literals before the query crosses the wire (the engine has no prepared
//     statement machinery to bind against). Named parameters are rejected by
//     CheckNamedValue.
//   - Context cancellation mid-query closes the connection. That is the only
//     cancel signal the protocol has, and it is precisely the database/sql
//     convention: the pool discards the dead Conn and later calls get a
//     fresh one.
//   - Server errors cross the wire as typed codes; the returned errors
//     answer errors.Is against the astdb sentinels (astdb.ErrParse,
//     astdb.ErrBudgetExceeded, ...) exactly as the in-process engine does.
//   - There are no transactions: the engine applies each statement
//     atomically under its own locking, and Begin returns an error.
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

func init() {
	sql.Register("astdb", &Driver{})
}

// Driver implements driver.Driver and driver.DriverContext.
type Driver struct{}

// Open dials dsn immediately (sql.Open normally defers to the Connector).
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses dsn into a dialing Connector.
func (d *Driver) OpenConnector(dsn string) (driver.Connector, error) {
	cfg, err := ParseDSN(dsn)
	if err != nil {
		return nil, err
	}
	return &Connector{cfg: cfg}, nil
}

// Config is a parsed DSN.
type Config struct {
	Addr        string        // host:port
	DialTimeout time.Duration // default 10s
}

// ParseDSN parses "host:port", "astdb://host:port", or either with
// "?dial_timeout=<duration>" appended.
func ParseDSN(dsn string) (Config, error) {
	cfg := Config{DialTimeout: 10 * time.Second}
	s := strings.TrimPrefix(dsn, "astdb://")
	if q := strings.IndexByte(s, '?'); q >= 0 {
		for _, kv := range strings.Split(s[q+1:], "&") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return cfg, fmt.Errorf("astdb driver: malformed DSN option %q", kv)
			}
			switch k {
			case "dial_timeout":
				d, err := time.ParseDuration(v)
				if err != nil {
					return cfg, fmt.Errorf("astdb driver: bad dial_timeout %q: %w", v, err)
				}
				cfg.DialTimeout = d
			default:
				return cfg, fmt.Errorf("astdb driver: unknown DSN option %q", k)
			}
		}
		s = s[:q]
	}
	_, port, err := net.SplitHostPort(s)
	if err != nil {
		return cfg, fmt.Errorf("astdb driver: DSN %q is not host:port: %w", dsn, err)
	}
	if _, err := strconv.Atoi(port); err != nil {
		return cfg, fmt.Errorf("astdb driver: DSN %q has non-numeric port %q", dsn, port)
	}
	cfg.Addr = s
	return cfg, nil
}

// Connector implements driver.Connector; sql.OpenDB(connector) and
// sql.Open("astdb", dsn) both land here.
type Connector struct {
	cfg Config
}

// Connect dials one wire session.
func (c *Connector) Connect(ctx context.Context) (driver.Conn, error) {
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", c.cfg.Addr)
	if err != nil {
		return nil, err
	}
	if tcp, ok := nc.(*net.TCPConn); ok {
		tcp.SetNoDelay(true) // request/response protocol: don't batch small frames
	}
	return &Conn{nc: nc}, nil
}

// Driver returns the shared Driver.
func (c *Connector) Driver() driver.Driver { return &Driver{} }
