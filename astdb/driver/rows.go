package driver

import (
	"database/sql/driver"
	"fmt"
	"io"
	"reflect"
	"time"

	"repro/internal/sqltypes"
	"repro/internal/wire"
)

// Rows adapts a fully-received wire result set to driver.Rows. The protocol
// ships whole results (the engine materializes aggregates anyway), so Next
// never touches the network.
type Rows struct {
	m *wire.Rows
	i int
}

// Columns implements driver.Rows.
func (r *Rows) Columns() []string { return r.m.Cols }

// Close implements driver.Rows; the result is already drained off the wire.
func (r *Rows) Close() error { return nil }

// Next implements driver.Rows.
func (r *Rows) Next(dest []driver.Value) error {
	if r.i >= len(r.m.Rows) {
		return io.EOF
	}
	row := r.m.Rows[r.i]
	r.i++
	for c := range dest {
		v, err := toDriverValue(row[c])
		if err != nil {
			return err
		}
		dest[c] = v
	}
	return nil
}

// toDriverValue maps an engine value onto database/sql's value domain.
func toDriverValue(v sqltypes.Value) (driver.Value, error) {
	switch v.Kind() {
	case sqltypes.KindNull:
		return nil, nil
	case sqltypes.KindInt:
		return v.Int(), nil
	case sqltypes.KindFloat:
		return v.Float(), nil
	case sqltypes.KindString:
		return v.Str(), nil
	case sqltypes.KindBool:
		return v.Bool(), nil
	case sqltypes.KindDate:
		return time.Date(int(v.DateYear()), time.Month(v.DateMonth()), int(v.DateDay()),
			0, 0, 0, 0, time.UTC), nil
	default:
		return nil, fmt.Errorf("astdb driver: unmappable value kind %v", v.Kind())
	}
}

// ColumnTypeDatabaseTypeName implements driver.RowsColumnTypeDatabaseTypeName
// ("INTEGER", "DOUBLE", "VARCHAR", "BOOLEAN", "DATE"; "NULL" for a column
// with no non-NULL values in this result).
func (r *Rows) ColumnTypeDatabaseTypeName(index int) string {
	return r.m.Kinds[index].String()
}

// ColumnTypeScanType implements driver.RowsColumnTypeScanType.
func (r *Rows) ColumnTypeScanType(index int) reflect.Type {
	switch r.m.Kinds[index] {
	case sqltypes.KindInt:
		return reflect.TypeOf(int64(0))
	case sqltypes.KindFloat:
		return reflect.TypeOf(float64(0))
	case sqltypes.KindString:
		return reflect.TypeOf("")
	case sqltypes.KindBool:
		return reflect.TypeOf(false)
	case sqltypes.KindDate:
		return reflect.TypeOf(time.Time{})
	default:
		return reflect.TypeOf(new(any)).Elem()
	}
}

// ColumnTypeNullable implements driver.RowsColumnTypeNullable: every engine
// column may be NULL (outer contexts, all-NULL aggregates).
func (r *Rows) ColumnTypeNullable(index int) (nullable, ok bool) { return true, true }

// Mode reports the server-side execution mode of this result (vectorized /
// compiled-row / interpreted) — observational, for load tooling.
func (r *Rows) Mode() string { return r.m.Mode }

// AST reports which summary table served the plan ("" = base tables).
func (r *Rows) AST() string { return r.m.AST }

// CacheHit reports whether the plan came from the server's plan cache.
func (r *Rows) CacheHit() bool { return r.m.CacheHit }
