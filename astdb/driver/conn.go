package driver

import (
	"context"
	"database/sql/driver"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/sqltypes"
	"repro/internal/wire"
)

// Conn is one wire session. database/sql serializes calls on a Conn, so no
// locking is needed around the socket; the only concurrent access is the
// cancellation path in roundTrip, which closes the socket.
type Conn struct {
	nc  net.Conn
	bad atomic.Bool // a failed or canceled round-trip poisons the session
}

// markBad poisons the conn and closes its socket; the pool discards it.
func (c *Conn) markBad() {
	if c.bad.CompareAndSwap(false, true) {
		c.nc.Close()
	}
}

// IsValid lets the pool drop poisoned conns instead of reusing them.
func (c *Conn) IsValid() bool { return !c.bad.Load() }

// Close ends the session.
func (c *Conn) Close() error {
	c.bad.Store(true)
	return c.nc.Close()
}

// roundTrip performs one request/response exchange. On ctx cancellation the
// socket is closed — that is the protocol's cancel signal; the server tears
// down the session and aborts the in-flight query — and ctx.Err() is
// returned. A conn that already failed returns ErrBadConn so database/sql
// retries on a fresh one; a failure after the request may have reached the
// server never does (the retry could execute DML twice).
func (c *Conn) roundTrip(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	if c.bad.Load() {
		return 0, nil, driver.ErrBadConn
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	type result struct {
		typ byte
		p   []byte
		err error
	}
	done := make(chan result, 1)
	go func() {
		if err := wire.WriteFrame(c.nc, typ, payload); err != nil {
			done <- result{err: fmt.Errorf("astdb driver: write: %w", err)}
			return
		}
		t, p, err := wire.ReadFrame(c.nc)
		if err != nil {
			err = fmt.Errorf("astdb driver: read: %w", err)
		}
		done <- result{t, p, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			c.markBad()
			return 0, nil, r.err
		}
		return r.typ, r.p, nil
	case <-ctx.Done():
		c.markBad() // closes the socket, which unblocks the goroutine
		<-done
		return 0, nil, ctx.Err()
	}
}

// request sends one statement and decodes an error response if that is what
// came back; wire errors unwrap to the astdb sentinels.
func (c *Conn) request(ctx context.Context, typ byte, sql string) (byte, []byte, error) {
	rtyp, p, err := c.roundTrip(ctx, typ, wire.EncodeString(sql))
	if err != nil {
		return 0, nil, err
	}
	if rtyp == wire.MsgError {
		werr, derr := wire.DecodeError(p)
		if derr != nil {
			c.markBad()
			return 0, nil, derr
		}
		return 0, nil, werr
	}
	return rtyp, p, nil
}

// Ping implements driver.Pinger.
func (c *Conn) Ping(ctx context.Context) error {
	typ, _, err := c.roundTrip(ctx, wire.MsgPing, nil)
	if err != nil {
		if c.bad.Load() && ctx.Err() == nil {
			return driver.ErrBadConn
		}
		return err
	}
	if typ != wire.MsgPong {
		c.markBad()
		return driver.ErrBadConn
	}
	return nil
}

// QueryContext implements driver.QueryerContext.
func (c *Conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	sql, err := interpolate(query, args)
	if err != nil {
		return nil, err
	}
	typ, p, err := c.request(ctx, wire.MsgQuery, sql)
	if err != nil {
		return nil, err
	}
	if typ != wire.MsgRows {
		c.markBad()
		return nil, fmt.Errorf("astdb driver: query answered with frame %#x", typ)
	}
	m, err := wire.DecodeRows(p)
	if err != nil {
		c.markBad()
		return nil, err
	}
	return &Rows{m: m}, nil
}

// ExecContext implements driver.ExecerContext.
func (c *Conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	sql, err := interpolate(query, args)
	if err != nil {
		return nil, err
	}
	typ, p, err := c.request(ctx, wire.MsgExec, sql)
	if err != nil {
		return nil, err
	}
	if typ != wire.MsgExecOK {
		c.markBad()
		return nil, fmt.Errorf("astdb driver: exec answered with frame %#x", typ)
	}
	ok, err := wire.DecodeExecOK(p)
	if err != nil {
		c.markBad()
		return nil, err
	}
	return execResult{affected: ok.Affected}, nil
}

// Prepare implements driver.Conn. Preparation is client-side only: the
// engine compiles per statement, so Stmt just remembers the text.
func (c *Conn) Prepare(query string) (driver.Stmt, error) {
	return &Stmt{conn: c, query: query, numInput: countPlaceholders(query)}, nil
}

// Begin implements driver.Conn. The engine has no transactions; each
// statement applies atomically under the engine's own locking.
func (c *Conn) Begin() (driver.Tx, error) {
	return nil, errors.New("astdb driver: transactions are not supported")
}

// BeginTx implements driver.ConnBeginTx with the same answer (without it,
// database/sql would silently fake a Tx on top of Begin).
func (c *Conn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	return c.Begin()
}

// CheckNamedValue implements driver.NamedValueChecker: ordinal "?"
// placeholders only, and only values with a SQL literal form. The value is
// replaced with its sqltypes form; interpolate renders it.
func (c *Conn) CheckNamedValue(nv *driver.NamedValue) error {
	if nv.Name != "" {
		return fmt.Errorf("astdb driver: named parameter %q not supported (ordinal ? only)", nv.Name)
	}
	v, err := toValue(nv.Value)
	if err != nil {
		return err
	}
	nv.Value = v
	return nil
}

// toValue maps a Go argument onto the engine's value domain.
func toValue(arg any) (sqltypes.Value, error) {
	switch v := arg.(type) {
	case nil:
		return sqltypes.Value{}, nil
	case sqltypes.Value:
		return v, nil
	case int64:
		return sqltypes.NewInt(v), nil
	case int:
		return sqltypes.NewInt(int64(v)), nil
	case float64:
		return sqltypes.NewFloat(v), nil
	case bool:
		return sqltypes.NewBool(v), nil
	case string:
		return sqltypes.NewString(v), nil
	case time.Time:
		return sqltypes.NewDate(v.Year(), int(v.Month()), v.Day()), nil
	default:
		return sqltypes.Value{}, fmt.Errorf("astdb driver: unsupported argument type %T", arg)
	}
}

// interpolate substitutes each ordinal "?" outside string literals with the
// SQL literal of the corresponding argument.
func interpolate(query string, args []driver.NamedValue) (string, error) {
	if len(args) == 0 && !strings.ContainsRune(query, '?') {
		return query, nil
	}
	var b strings.Builder
	b.Grow(len(query) + 16*len(args))
	next := 0
	inString := false
	for i := 0; i < len(query); i++ {
		ch := query[i]
		switch {
		case ch == '\'':
			inString = !inString // '' escapes read as leave-then-reenter: harmless
			b.WriteByte(ch)
		case ch == '?' && !inString:
			if next >= len(args) {
				return "", fmt.Errorf("astdb driver: statement has more than %d placeholders", len(args))
			}
			v, err := toValue(args[next].Value)
			if err != nil {
				return "", err
			}
			b.WriteString(v.SQLLiteral())
			next++
		default:
			b.WriteByte(ch)
		}
	}
	if next != len(args) {
		return "", fmt.Errorf("astdb driver: %d arguments for %d placeholders", len(args), next)
	}
	return b.String(), nil
}

// countPlaceholders reports the number of ordinal placeholders, for
// Stmt.NumInput.
func countPlaceholders(query string) int {
	n := 0
	inString := false
	for i := 0; i < len(query); i++ {
		switch {
		case query[i] == '\'':
			inString = !inString
		case query[i] == '?' && !inString:
			n++
		}
	}
	return n
}

// Stmt is a client-side prepared statement: remembered text plus the
// placeholder count. Execution delegates to the Conn.
type Stmt struct {
	conn     *Conn
	query    string
	numInput int
}

// Close implements driver.Stmt (nothing is held server-side).
func (s *Stmt) Close() error { return nil }

// NumInput implements driver.Stmt.
func (s *Stmt) NumInput() int { return s.numInput }

// Query implements driver.Stmt.
func (s *Stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), named(args))
}

// Exec implements driver.Stmt.
func (s *Stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), named(args))
}

// QueryContext implements driver.StmtQueryContext.
func (s *Stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	return s.conn.QueryContext(ctx, s.query, args)
}

// ExecContext implements driver.StmtExecContext.
func (s *Stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	return s.conn.ExecContext(ctx, s.query, args)
}

// named adapts positional values to the NamedValue form.
func named(args []driver.Value) []driver.NamedValue {
	nvs := make([]driver.NamedValue, len(args))
	for i, a := range args {
		nvs[i] = driver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return nvs
}

// execResult implements driver.Result.
type execResult struct {
	affected int64
}

// LastInsertId implements driver.Result; the engine has no auto-increment
// identity.
func (r execResult) LastInsertId() (int64, error) {
	return 0, errors.New("astdb driver: LastInsertId is not supported")
}

// RowsAffected implements driver.Result.
func (r execResult) RowsAffected() (int64, error) { return r.affected, nil }
