// Conformance suite for the database/sql driver: the wire round-trip must
// behave like the in-process engine — identical rows for the paper suite,
// identical error classification under errors.Is, and the standard
// database/sql contracts (pooling under race, mid-query cancellation,
// prepared statements, column type introspection).
package driver_test

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/astdb"
	astdriver "repro/astdb/driver"
	"repro/internal/bench"
	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sqltypes"
	"repro/internal/wire"
	"repro/internal/workload"
)

// testServer is one running wire server over a star-schema engine with the
// paper's ast6 and ast7 summary tables registered.
type testServer struct {
	db   *astdb.Engine
	srv  *server.Server
	obsv *obs.Observer
	addr string
}

func startServer(t *testing.T, cfg server.Config) *testServer {
	t.Helper()
	cat := catalog.New()
	obsv := obs.New()
	db, err := astdb.Open(cat, astdb.WithObserver(obsv))
	if err != nil {
		t.Fatal(err)
	}
	workload.Schema(cat)
	workload.Load(cat, db.Store(), workload.StarConfig{NumTrans: 600, Seed: 3})
	for _, name := range []string{"ast6", "ast7"} {
		if _, _, err := db.CreateSummaryTable(context.Background(), name, bench.ASTDefs[name]); err != nil {
			t.Fatal(err)
		}
	}
	s := server.New(db, cfg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return &testServer{db: db, srv: s, obsv: obsv, addr: addr.String()}
}

func (ts *testServer) open(t *testing.T) *sql.DB {
	t.Helper()
	db, err := sql.Open("astdb", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// scanAll drains a *sql.Rows into generic values.
func scanAll(t *testing.T, rows *sql.Rows) [][]any {
	t.Helper()
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	var out [][]any
	for rows.Next() {
		row := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range row {
			ptrs[i] = &row[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			t.Fatal(err)
		}
		out = append(out, row)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// asDriverValue mirrors the driver's value mapping for comparison against
// in-process results.
func asDriverValue(t *testing.T, v sqltypes.Value) any {
	t.Helper()
	switch v.Kind() {
	case sqltypes.KindNull:
		return nil
	case sqltypes.KindInt:
		return v.Int()
	case sqltypes.KindFloat:
		return v.Float()
	case sqltypes.KindString:
		return v.Str()
	case sqltypes.KindBool:
		return v.Bool()
	case sqltypes.KindDate:
		return time.Date(int(v.DateYear()), time.Month(v.DateMonth()), int(v.DateDay()), 0, 0, 0, 0, time.UTC)
	default:
		t.Fatalf("unmappable kind %v", v.Kind())
		return nil
	}
}

// TestPaperSuiteIdenticalRows is the acceptance contract: paper-suite
// queries through sql.Open("astdb", ...) return exactly the rows the
// in-process engine returns — including the ones served by summary-table
// rewrites (q4 over ast6, q7 over ast7).
func TestPaperSuiteIdenticalRows(t *testing.T) {
	ts := startServer(t, server.Config{})
	db := ts.open(t)
	ctx := context.Background()
	for _, name := range []string{"q1", "q4", "q7", "q8", "q11_1"} {
		q := bench.Queries[name]
		t.Run(name, func(t *testing.T) {
			rows, err := db.QueryContext(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			got := scanAll(t, rows)
			want, err := ts.db.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want.Result.Rows) {
				t.Fatalf("driver %d rows, in-process %d", len(got), len(want.Result.Rows))
			}
			for r := range got {
				for c := range got[r] {
					wv := asDriverValue(t, want.Result.Rows[r][c])
					if !reflect.DeepEqual(got[r][c], wv) {
						t.Fatalf("row %d col %d: driver %#v, in-process %#v", r, c, got[r][c], wv)
					}
				}
			}
		})
	}
	// q4 and q7 must actually have been rewrite-served, or the parity above
	// proves less than it claims.
	for q, ast := range map[string]string{"q4": "ast6", "q7": "ast7"} {
		ans, err := ts.db.Query(ctx, bench.Queries[q])
		if err != nil {
			t.Fatal(err)
		}
		if ans.AST != ast {
			t.Fatalf("%s routed to %q, want %q", q, ans.AST, ast)
		}
	}
}

func TestPlaceholdersAndExec(t *testing.T) {
	ts := startServer(t, server.Config{})
	db := ts.open(t)
	ctx := context.Background()

	t.Run("query-args", func(t *testing.T) {
		rows, err := db.QueryContext(ctx,
			`select flid, count(*) as cnt from trans where qty > ? and date >= ? group by flid`,
			2, time.Date(1993, 6, 1, 0, 0, 0, 0, time.UTC))
		if err != nil {
			t.Fatal(err)
		}
		got := scanAll(t, rows)
		want, err := ts.db.Query(ctx,
			`select flid, count(*) as cnt from trans where qty > 2 and date >= DATE '1993-06-01' group by flid`)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Result.Rows) {
			t.Fatalf("interpolated query: %d rows, want %d", len(got), len(want.Result.Rows))
		}
	})

	t.Run("exec-args-and-quote-escaping", func(t *testing.T) {
		res, err := db.ExecContext(ctx, `insert into loc values (?, ?, ?, ?)`,
			7001, "O'Fallon", "MO", "USA")
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.RowsAffected(); n != 1 {
			t.Fatalf("insert affected %d", n)
		}
		var city string
		if err := db.QueryRowContext(ctx, `select city from loc where lid = ?`, 7001).Scan(&city); err != nil {
			t.Fatal(err)
		}
		if city != "O'Fallon" {
			t.Fatalf("quoted string round-trip: %q", city)
		}
		res, err = db.ExecContext(ctx, `delete from loc where lid = ?`, 7001)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.RowsAffected(); n != 1 {
			t.Fatalf("delete affected %d", n)
		}
	})

	t.Run("prepared-statement", func(t *testing.T) {
		stmt, err := db.PrepareContext(ctx, `select count(*) as c from trans where qty >= ?`)
		if err != nil {
			t.Fatal(err)
		}
		defer stmt.Close()
		prev := int64(1 << 40)
		for qty := 0; qty <= 2; qty++ {
			var c int64
			if err := stmt.QueryRowContext(ctx, qty).Scan(&c); err != nil {
				t.Fatal(err)
			}
			if c == 0 || c > prev {
				t.Fatalf("count(qty >= %d) = %d, previous %d", qty, c, prev)
			}
			prev = c
		}
	})

	t.Run("named-args-rejected", func(t *testing.T) {
		_, err := db.QueryContext(ctx, `select count(*) as c from trans where qty > :n`, sql.Named("n", 1))
		if err == nil || !strings.Contains(err.Error(), "named parameter") {
			t.Fatalf("named arg accepted: %v", err)
		}
	})

	t.Run("transactions-rejected", func(t *testing.T) {
		if _, err := db.BeginTx(ctx, nil); err == nil {
			t.Fatal("BeginTx succeeded against a non-transactional engine")
		}
	})
}

func TestColumnTypes(t *testing.T) {
	ts := startServer(t, server.Config{})
	db := ts.open(t)
	rows, err := db.QueryContext(context.Background(),
		`select tid, price, city, date from trans, loc where flid = lid and qty > 0`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cts, err := rows.ColumnTypes()
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		dbType string
		scan   reflect.Type
	}{
		{"INTEGER", reflect.TypeOf(int64(0))},
		{"DOUBLE", reflect.TypeOf(float64(0))},
		{"VARCHAR", reflect.TypeOf("")},
		{"DATE", reflect.TypeOf(time.Time{})},
	}
	if len(cts) != len(want) {
		t.Fatalf("%d column types", len(cts))
	}
	for i, ct := range cts {
		if ct.DatabaseTypeName() != want[i].dbType {
			t.Fatalf("col %d type %q, want %q", i, ct.DatabaseTypeName(), want[i].dbType)
		}
		if ct.ScanType() != want[i].scan {
			t.Fatalf("col %d scan type %v, want %v", i, ct.ScanType(), want[i].scan)
		}
		if nullable, ok := ct.Nullable(); !ok || !nullable {
			t.Fatalf("col %d not reported nullable", i)
		}
	}
}

// TestErrorSurfaceAcrossWire: errors.Is against the astdb sentinels holds on
// the client side of the wire exactly as it does in-process.
func TestErrorSurfaceAcrossWire(t *testing.T) {
	ts := startServer(t, server.Config{})
	db := ts.open(t)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		run  func() error
		want error
	}{
		{"parse", func() error {
			_, err := db.QueryContext(ctx, `select from where`)
			return err
		}, astdb.ErrParse},
		{"unknown-table", func() error {
			_, err := db.QueryContext(ctx, `select x from ghost`)
			return err
		}, astdb.ErrUnknownTable},
		{"write-protected", func() error {
			_, err := db.ExecContext(ctx, `delete from ast6`)
			return err
		}, astdb.ErrWriteProtected},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.want)
			}
			var werr *wire.Error
			if !errors.As(err, &werr) {
				t.Fatalf("wire error type lost: %v", err)
			}
		})
	}
}

// TestMidQueryCancelClosesSession: canceling the context while a response is
// outstanding returns ctx.Err() and closes the underlying session — the
// protocol's only cancel signal. A hanging server makes the timing
// deterministic: the query cannot complete until the test cancels.
func TestMidQueryCancelClosesSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	received := make(chan struct{})
	closed := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			closed <- err
			return
		}
		defer conn.Close()
		if _, _, err := wire.ReadFrame(conn); err != nil {
			closed <- err
			return
		}
		close(received)
		_, _, err = wire.ReadFrame(conn) // hang until the client closes
		closed <- err
	}()

	db, err := sql.Open("astdb", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-received
		cancel()
	}()
	_, qerr := db.QueryContext(ctx, `select count(*) as c from trans`)
	if !errors.Is(qerr, context.Canceled) {
		t.Fatalf("canceled query returned %v", qerr)
	}
	select {
	case err := <-closed:
		if err == nil {
			t.Fatal("session socket still open after cancel")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session socket not closed after cancel")
	}
}

// TestPoolRecoversAfterCancel: after a cancellation kills a session, the
// pool opens a fresh one and later queries succeed.
func TestPoolRecoversAfterCancel(t *testing.T) {
	ts := startServer(t, server.Config{})
	db := ts.open(t)
	db.SetMaxOpenConns(1) // force reuse of the single (now dead) slot
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, bench.Queries["q4"]); err == nil {
		t.Fatal("pre-canceled query succeeded")
	}
	var year, value = int64(0), 0.0
	row := db.QueryRowContext(context.Background(),
		`select year(date) as year, sum(qty * price) as value from trans group by year(date) having year(date) = 1990`)
	if err := row.Scan(&year, &value); err != nil {
		t.Fatalf("pool did not recover: %v", err)
	}
	if year != 1990 || value <= 0 {
		t.Fatalf("recovered query got (%d, %f)", year, value)
	}
}

// TestConcurrentPool hammers one server through a pooled *sql.DB from many
// goroutines; run under -race this is the session-isolation check.
func TestConcurrentPool(t *testing.T) {
	ts := startServer(t, server.Config{MaxConcurrent: 4, QueueDepth: 256})
	db := ts.open(t)
	db.SetMaxOpenConns(16)
	ctx := context.Background()

	var wantCount int64
	if err := db.QueryRowContext(ctx, `select count(*) as c from trans`).Scan(&wantCount); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 16, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0:
					var c int64
					if err := db.QueryRowContext(ctx, `select count(*) as c from trans`).Scan(&c); err != nil {
						errs <- fmt.Errorf("worker %d: %w", w, err)
						return
					}
					if c != wantCount {
						errs <- fmt.Errorf("worker %d read count %d, want %d", w, c, wantCount)
						return
					}
				case 1:
					rows, err := db.QueryContext(ctx, bench.Queries["q4"])
					if err != nil {
						errs <- fmt.Errorf("worker %d q4: %w", w, err)
						return
					}
					if got := scanAll(t, rows); len(got) == 0 {
						errs <- fmt.Errorf("worker %d q4 empty", w)
						return
					}
				default:
					var c int64
					if err := db.QueryRowContext(ctx,
						`select count(*) as c from trans where qty >= ?`, w%3).Scan(&c); err != nil {
						errs <- fmt.Errorf("worker %d args: %w", w, err)
						return
					}
					if c == 0 || c > wantCount {
						errs <- fmt.Errorf("worker %d filtered count %d out of range", w, c)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDSNParsing(t *testing.T) {
	for _, tc := range []struct {
		dsn     string
		addr    string
		timeout time.Duration
		bad     bool
	}{
		{dsn: "127.0.0.1:5433", addr: "127.0.0.1:5433", timeout: 10 * time.Second},
		{dsn: "astdb://db.example:9}", bad: true},
		{dsn: "astdb://db.example:9", addr: "db.example:9", timeout: 10 * time.Second},
		{dsn: "localhost:1?dial_timeout=2s", addr: "localhost:1", timeout: 2 * time.Second},
		{dsn: "localhost:1?dial_timeout=bogus", bad: true},
		{dsn: "localhost:1?mystery=1", bad: true},
		{dsn: "no-port", bad: true},
	} {
		cfg, err := astdriver.ParseDSN(tc.dsn)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseDSN(%q) accepted", tc.dsn)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDSN(%q): %v", tc.dsn, err)
			continue
		}
		if cfg.Addr != tc.addr || cfg.DialTimeout != tc.timeout {
			t.Errorf("ParseDSN(%q) = %+v", tc.dsn, cfg)
		}
	}
}

func TestPingAndShutdown(t *testing.T) {
	ts := startServer(t, server.Config{})
	db := ts.open(t)
	ctx := context.Background()
	if err := db.PingContext(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if err := db.PingContext(ctx); err == nil {
		t.Fatal("ping succeeded against a stopped server")
	}
}
