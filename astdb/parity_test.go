package astdb_test

import (
	"context"
	"sort"
	"testing"

	"repro/astdb"
	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/obs"
)

// suiteEngine builds a facade over the paper workload with every summary
// table registered. Each call builds an identical environment (fixed seed),
// so results from two engines are comparable row for row.
func suiteEngine(t *testing.T, opts ...astdb.Option) *astdb.Engine {
	t.Helper()
	env := bench.NewEnvDefault(goldenScale)
	names := make([]string, 0, len(bench.ASTDefs))
	for name := range bench.ASTDefs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := env.RegisterAST(name, bench.ASTDefs[name]); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	return env.DB(opts...)
}

// TestObserverParity runs the whole paper query suite through an observed and
// an unobserved engine and requires identical answers: observability must
// never change what a query returns, which summary table serves it, or
// whether the cache hits.
func TestObserverParity(t *testing.T) {
	observed := suiteEngine(t, astdb.WithObserver(obs.New()))
	plain := suiteEngine(t)

	names := make([]string, 0, len(bench.Queries))
	for name := range bench.Queries {
		names = append(names, name)
	}
	sort.Strings(names)

	ctx := context.Background()
	for pass := 1; pass <= 2; pass++ { // second pass goes through the plan cache
		for _, name := range names {
			a, err := observed.Query(ctx, bench.Queries[name])
			if err != nil {
				t.Fatalf("%s (observed): %v", name, err)
			}
			b, err := plain.Query(ctx, bench.Queries[name])
			if err != nil {
				t.Fatalf("%s (plain): %v", name, err)
			}
			if a.AST != b.AST || a.CacheHit != b.CacheHit {
				t.Fatalf("%s pass %d: routing diverged: observed (ast=%q hit=%t) vs plain (ast=%q hit=%t)",
					name, pass, a.AST, a.CacheHit, b.AST, b.CacheHit)
			}
			astdb.SortRows(a.Result.Rows)
			astdb.SortRows(b.Result.Rows)
			if diff := exec.EqualResults(a.Result, b.Result); diff != "" {
				t.Fatalf("%s pass %d: results diverged: %s", name, pass, diff)
			}
		}
	}

	// The observed engine must actually have recorded the pipeline...
	snap := observed.Snapshot()
	for _, ctr := range []string{"core.match.candidates", "core.plancache.hits", "exec.runs"} {
		if snap.Counters[ctr] <= 0 {
			t.Errorf("observed engine recorded no %s", ctr)
		}
	}
	if len(snap.Spans) == 0 {
		t.Error("observed engine recorded no spans")
	}
	// ...and the unobserved engine must have recorded nothing at all.
	if plainSnap := plain.Snapshot(); len(plainSnap.Counters) != 0 || len(plainSnap.Spans) != 0 || len(plainSnap.Events) != 0 {
		t.Errorf("disabled observer accumulated state: %+v", plainSnap)
	}
}

// TestDisabledInstrumentationZeroAlloc pins the facade's hot-path contract:
// with no observer attached, the per-query instrumentation sequence (span
// from context, child span, counter, end) allocates nothing.
func TestDisabledInstrumentationZeroAlloc(t *testing.T) {
	var o *obs.Observer
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		span := obs.SpanFromContext(ctx)
		child := span.Child("exec")
		o.Add("exec.runs", 1)
		o.Observe("exec.run", 0)
		ctx2 := obs.ContextWithSpan(ctx, child)
		_ = ctx2
		child.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f times per run, want 0", allocs)
	}
}
