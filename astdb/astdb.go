// Package astdb is the unified facade over the Automatic Summary Table
// reproduction: one Engine value ties together the catalog, storage, the
// rewriter (matching §3–§6 of the paper), the executor, the plan cache, and
// incremental maintenance, behind context-first Query / Rewrite / Explain /
// Refresh entry points.
//
// The facade also carries the degrade-gracefully contract that used to live in
// internal/resilient: routing a query through a summary table is an
// optimization, never a source of failure. Broken AST definitions, match
// panics, stale or quarantined materializations, and unreadable materialized
// tables all degrade to the base plan; only typed budget errors
// (exec.ErrBudgetExceeded, exec.ErrCanceled) and base-table failures surface.
//
// Observability is opt-in via WithObserver: the engine then records
// hierarchical spans (query → parse/match/plancache.lookup/exec), monotonic
// counters, latency histograms, and a sequenced event stream, all exposed
// through Snapshot. Without an observer every instrumentation point is a
// nil-receiver no-op.
package astdb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/maintain"
	"repro/internal/obs"
	"repro/internal/qgm"
	"repro/internal/qgmcheck"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Re-exported pipeline types, so facade users need no internal imports.
type (
	// Result is an executed query's column names and rows.
	Result = exec.Result
	// Config collects the knobs of one engine run (row budget, timeout,
	// parallelism).
	Config = exec.Config
	// Stats describes one AST maintenance action.
	Stats = maintain.Stats
	// Rewrite is the outcome of a plan-cache-aware rewrite.
	Rewrite = core.CachedRewrite
	// VecMode is the Config.Vectorize knob selecting the executor's
	// evaluation strategy.
	VecMode = exec.VecMode
)

// Config.Vectorize values: VecAuto (the default) runs supported plan shapes
// through the vectorized executor; VecOff pins the row-at-a-time reference
// path.
const (
	VecAuto = exec.VecAuto
	VecOff  = exec.VecOff
)

// SortRows orders result rows deterministically (for display and diffing).
func SortRows(rows [][]sqltypes.Value) { exec.SortRows(rows) }

// Engine is the facade: a catalog plus storage, executor, rewriter, plan
// cache, and maintainer. Construct one with Open (fresh pipeline) or Wrap
// (around existing components). Methods are safe for concurrent queries;
// registering summary tables concurrently with queries is not.
type Engine struct {
	cat   *catalog.Catalog
	store *storage.Store
	exe   *exec.Engine
	rw    *core.Rewriter
	maint *maintain.Maintainer
	obsv  *obs.Observer
	cfg   exec.Config
	cache *core.PlanCache // nil = plan caching disabled

	// verifyPlans checks every parsed graph with qgmcheck (WithVerifyPlans).
	verifyPlans bool

	// The AST set and its derived maintenance plans are read on every Query
	// and published RCU-style: asts always points at an immutable slice that
	// readers load with one atomic op and never mutate; writers (summary-table
	// registration) serialize on mu, build a fresh slice, and swap the
	// pointer. plans caches the maintenance analysis for the published set; a
	// nil pointer means "recompute" and is the write side's invalidation.
	// Engine bookkeeping therefore never serializes concurrent Query calls.
	mu    sync.Mutex // serializes AST-set writers; readers use asts/plans
	asts  atomic.Pointer[[]*core.CompiledAST]
	plans atomic.Pointer[[]*maintain.Plan]
}

// astsNow returns the published AST set. The slice is immutable by contract:
// callers (and everything they pass it to) must not append to or reorder it.
func (e *Engine) astsNow() []*core.CompiledAST {
	if p := e.asts.Load(); p != nil {
		return *p
	}
	return nil
}

// setASTs publishes a new AST set and invalidates the derived maintenance
// plans. Callers must hold e.mu (or be the constructor, pre-publication).
func (e *Engine) setASTs(asts []*core.CompiledAST) {
	e.asts.Store(&asts)
	e.plans.Store(nil)
}

// settings accumulates functional options.
type settings struct {
	store       *storage.Store
	cfg         exec.Config
	cacheCap    int // 0 = default size, <0 = disabled
	obsv        *obs.Observer
	coreOpts    core.Options
	verifyPlans bool
}

// Option configures Open and Wrap.
type Option func(*settings)

// WithStore supplies the storage backing the engine (Open only; Wrap uses the
// executor's store). Default: a fresh empty store.
func WithStore(s *storage.Store) Option { return func(c *settings) { c.store = s } }

// WithLimits sets the execution config (row budget, timeout, parallelism)
// applied to every query and materialization the engine runs.
func WithLimits(cfg exec.Config) Option { return func(c *settings) { c.cfg = cfg } }

// WithPlanCache sizes the rewrite plan cache: n > 0 sets the capacity, n == 0
// keeps the default (core.DefaultPlanCacheSize), n < 0 disables caching.
func WithPlanCache(n int) Option { return func(c *settings) { c.cacheCap = n } }

// WithObserver attaches an observability sink. The observer is threaded
// through the rewriter, executor, catalog, and maintainer, so spans, counters,
// and events from every pipeline stage land in one Snapshot.
func WithObserver(o *obs.Observer) Option { return func(c *settings) { c.obsv = o } }

// WithAllowStale lets queries read summary tables marked stale (quarantined
// ones are never used). Open only; Wrap keeps the passed rewriter's options.
func WithAllowStale(allow bool) Option {
	return func(c *settings) { c.coreOpts.AllowStale = allow }
}

// WithCoreOptions sets the full rewriter option block (ablation switches,
// AllowStale). Open only; apply before WithAllowStale if combining.
func WithCoreOptions(o core.Options) Option { return func(c *settings) { c.coreOpts = o } }

// WithVerifyPlans turns on static plan verification (internal/qgmcheck) at
// both engine seams: every parsed query graph is checked post-build (a
// failing build is an engine bug and surfaces as an error), and the rewriter
// runs the deep semantic checker over every accepted rewrite (a failing
// rewrite is discarded and the query degrades to the base plan). Default off:
// the deep checker allocates per plan, and the zero-overhead observability
// contract holds only without it. Open only; Wrap keeps the passed rewriter's
// options, but the post-parse seam still applies.
func WithVerifyPlans(on bool) Option {
	return func(c *settings) {
		c.coreOpts.VerifyPlans = on
		c.verifyPlans = on
	}
}

// Open builds a fresh pipeline over the catalog and compiles every summary
// table definition registered in it. Compilation failures are not fatal: the
// engine is returned usable with the definitions that did compile, alongside
// a joined error naming the broken ones. Materializations are not computed;
// call Refresh to populate (or re-populate) the summary tables.
func Open(cat *catalog.Catalog, options ...Option) (*Engine, error) {
	c := settings{}
	for _, o := range options {
		o(&c)
	}
	store := c.store
	if store == nil {
		store = storage.NewStore()
	}
	rw := core.NewRewriter(cat, c.coreOpts)
	e := assemble(cat, store, exec.NewEngine(store), rw, c)
	asts, err := rw.CompileAll()
	e.setASTs(asts)
	return e, err
}

// Wrap builds the facade around existing components — an executor, a rewriter,
// and compiled summary tables — without copying or re-registering anything.
// The store and catalog come from the executor and rewriter; WithStore,
// WithAllowStale, and WithCoreOptions are ignored.
func Wrap(rw *core.Rewriter, exe *exec.Engine, asts []*core.CompiledAST, options ...Option) *Engine {
	c := settings{}
	for _, o := range options {
		o(&c)
	}
	e := assemble(rw.Catalog(), exe.Store(), exe, rw, c)
	e.setASTs(append([]*core.CompiledAST(nil), asts...))
	return e
}

func assemble(cat *catalog.Catalog, store *storage.Store, exe *exec.Engine, rw *core.Rewriter, c settings) *Engine {
	e := &Engine{
		cat:   cat,
		store: store,
		exe:   exe,
		rw:    rw,
		maint: maintain.New(store).WithCatalog(cat),
		cfg:   c.cfg,

		verifyPlans: c.verifyPlans,
	}
	if c.cacheCap >= 0 {
		e.cache = core.NewPlanCache(c.cacheCap)
	}
	if c.obsv != nil {
		e.obsv = c.obsv
		rw.SetObserver(c.obsv)
		exe.SetObserver(c.obsv)
		cat.SetObserver(c.obsv)
		e.maint.WithObserver(c.obsv)
	}
	return e
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Store returns the engine's storage.
func (e *Engine) Store() *storage.Store { return e.store }

// Exec returns the underlying executor.
func (e *Engine) Exec() *exec.Engine { return e.exe }

// Rewriter returns the underlying rewriter.
func (e *Engine) Rewriter() *core.Rewriter { return e.rw }

// Observer returns the attached observer (nil when observability is off).
func (e *Engine) Observer() *obs.Observer { return e.obsv }

// PlanCache returns the rewrite plan cache (nil when disabled).
func (e *Engine) PlanCache() *core.PlanCache { return e.cache }

// Snapshot returns a copy of the observer's state; the zero Snapshot when no
// observer is attached.
func (e *Engine) Snapshot() obs.Snapshot { return e.obsv.Snapshot() }

// ASTs returns the compiled summary tables, in registration order. The
// returned slice is the caller's to mutate; internal hot paths use astsNow.
func (e *Engine) ASTs() []*core.CompiledAST {
	return append([]*core.CompiledAST(nil), e.astsNow()...)
}

// Degradations drains the degradation errors (recovered match panics,
// discarded invalid rewrites) recorded since the last call.
func (e *Engine) Degradations() []error { return e.rw.Degradations() }

// DegradationEvents drains the sequenced degradation events and reports how
// many older ones the bounded buffer evicted before this drain.
func (e *Engine) DegradationEvents() ([]core.DegradationEvent, int) {
	return e.rw.DegradationEvents()
}

// startSpan roots a span on the engine's observer, or nests it under a span
// already carried by the context.
func (e *Engine) startSpan(ctx context.Context, name string) obs.Span {
	if parent := obs.SpanFromContext(ctx); parent.Enabled() {
		return parent.Child(name)
	}
	return e.obsv.Start(name)
}

// Answer is the outcome of one resilient query.
type Answer struct {
	Result *exec.Result
	// Plan is the graph that produced Result: the rewritten plan when a
	// summary table served the query, the base plan otherwise.
	Plan *qgm.Graph
	// Rewrite carries the match details when the rewriter matched a summary
	// table; nil on base plans and on plan-cache hits (the match ran when the
	// plan was first cached).
	Rewrite *core.Result
	// AST names the summary table the plan read; "" means base tables.
	AST string
	// FellBack marks a query that was rewritten but answered from base tables
	// because executing the rewritten plan failed.
	FellBack bool
	// CacheHit reports that the plan came from the plan cache (no matching
	// ran).
	CacheHit bool
}

// Query answers one SQL query with graceful degradation, through the plan
// cache when one is configured: parse, rewrite against the registered summary
// tables (cost-based when cached, picking the cheapest candidate), execute
// under the engine's limits, and fall back to the base plan — marking the AST
// stale — if the rewritten plan fails. Only typed budget errors and
// base-plan failures are returned.
func (e *Engine) Query(ctx context.Context, sql string) (*Answer, error) {
	span := e.startSpan(ctx, "query")
	defer span.End()
	ctx = obs.ContextWithSpan(ctx, span)
	if e.cache == nil {
		g, err := e.parse(span, sql)
		if err != nil {
			return nil, err
		}
		return e.queryGraph(ctx, g)
	}
	cr, err := e.rw.RewriteSQLCached(ctx, e.cache, sql, e.astsNow(), e.store)
	if err != nil {
		return nil, compileError(err)
	}
	r, err := e.runPlan(ctx, cr.Plan)
	if err == nil {
		return &Answer{Result: r, Plan: cr.Plan, Rewrite: cr.Rewrite, AST: cr.AST, CacheHit: cr.Hit}, nil
	}
	if cr.AST == "" || errors.Is(err, exec.ErrBudgetExceeded) || errors.Is(err, exec.ErrCanceled) {
		return nil, err
	}
	// The rewritten plan failed (e.g. the materialized table is unreadable).
	// Mark the AST stale — which also invalidates the cached plan, its key
	// fingerprints AST status — and answer from base tables.
	e.cat.MarkStale(cr.AST)
	base, berr := e.parse(span, sql)
	if berr != nil {
		return nil, err
	}
	r, err = e.runPlan(ctx, base)
	if err != nil {
		return nil, err
	}
	return &Answer{Result: r, Plan: base, Rewrite: cr.Rewrite, FellBack: true, CacheHit: cr.Hit}, nil
}

// QueryGraph is Query for an already-built graph; it bypasses the plan cache.
// The input graph is never mutated (the rewrite works on a clone), so it
// stays available as the fallback base plan.
func (e *Engine) QueryGraph(ctx context.Context, query *qgm.Graph) (*Answer, error) {
	span := e.startSpan(ctx, "query")
	defer span.End()
	return e.queryGraph(obs.ContextWithSpan(ctx, span), query)
}

func (e *Engine) queryGraph(ctx context.Context, query *qgm.Graph) (*Answer, error) {
	plan, res := e.rw.RewriteOrFallback(ctx, query, e.astsNow())
	r, err := e.runPlan(ctx, plan)
	if err == nil {
		ans := &Answer{Result: r, Plan: plan, Rewrite: res}
		if res != nil {
			ans.AST = res.AST.Def.Name
		}
		return ans, nil
	}
	// Budget exhaustion and cancellation surface typed: retrying on base
	// tables could only be slower.
	if res == nil || errors.Is(err, exec.ErrBudgetExceeded) || errors.Is(err, exec.ErrCanceled) {
		return nil, err
	}
	e.cat.MarkStale(res.AST.Def.Name)
	r, err = e.runPlan(ctx, query)
	if err != nil {
		return nil, err
	}
	return &Answer{Result: r, Plan: query, Rewrite: res, FellBack: true}, nil
}

// Rewrite plans one SQL query without executing it. With no restriction it is
// the cache-aware cost-based rewrite Query uses; naming summary tables in
// only restricts the candidate set (bypassing the cache, whose entries are
// keyed against the full set).
func (e *Engine) Rewrite(ctx context.Context, sql string, only ...string) (*Rewrite, error) {
	span := e.startSpan(ctx, "rewrite")
	defer span.End()
	ctx = obs.ContextWithSpan(ctx, span)
	if e.cache != nil && len(only) == 0 {
		cr, err := e.rw.RewriteSQLCached(ctx, e.cache, sql, e.astsNow(), e.store)
		if err != nil {
			return nil, compileError(err)
		}
		return cr, nil
	}
	g, err := e.parse(span, sql)
	if err != nil {
		return nil, err
	}
	plan, res := e.rw.RewriteOrFallback(ctx, g, e.selectASTs(only))
	cr := &Rewrite{Plan: plan, Rewrite: res}
	if res != nil {
		cr.AST = res.AST.Def.Name
	}
	return cr, nil
}

// Execute runs one graph under the engine's limits, with panics converted to
// errors. It performs no rewriting and no fallback.
func (e *Engine) Execute(ctx context.Context, g *qgm.Graph) (*exec.Result, error) {
	return e.runPlan(ctx, g)
}

// parse builds a graph from SQL under a "parse" child span, classifying
// failures under the typed error surface (ErrParse / ErrUnknownTable). With
// WithVerifyPlans, the built graph is additionally run through the static
// checker: a violation here means the builder produced an unsound graph, and
// surfaces as an error rather than silently planning over it.
func (e *Engine) parse(span obs.Span, sql string) (*qgm.Graph, error) {
	p := span.Child("parse")
	g, err := qgm.BuildSQL(sql, e.cat)
	p.End()
	if err != nil {
		return nil, compileError(err)
	}
	if e.verifyPlans {
		if verr := qgmcheck.AsError(qgmcheck.Check(g)); verr != nil {
			return nil, fmt.Errorf("astdb: built graph failed verification: %w", verr)
		}
	}
	return g, nil
}

// selectASTs returns the compiled ASTs restricted to the given names (all
// when names is empty). The unrestricted case returns the published slice
// itself; the filtered case builds a fresh slice — filtering in place would
// scribble on the immutable published set.
func (e *Engine) selectASTs(names []string) []*core.CompiledAST {
	asts := e.astsNow()
	if len(names) == 0 {
		return asts
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := make([]*core.CompiledAST, 0, len(names))
	for _, ca := range asts {
		if want[ca.Def.Name] {
			out = append(out, ca)
		}
	}
	return out
}

// runPlan executes one graph, converting a panic anywhere under the executor
// into an error so the fallback logic always gets control back.
func (e *Engine) runPlan(ctx context.Context, g *qgm.Graph) (r *exec.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			r, err = nil, fmt.Errorf("astdb: execution panicked: %v", rec)
		}
	}()
	return e.exe.RunCtx(ctx, g, e.cfg)
}

// CreateTable registers a table in the catalog and creates its (empty)
// storage.
func (e *Engine) CreateTable(t *catalog.Table) error {
	if err := e.cat.AddTable(t); err != nil {
		return err
	}
	meta, _ := e.cat.Table(t.Name)
	e.store.Create(meta)
	return nil
}

// AddForeignKey records a referential-integrity constraint; the matcher uses
// it to prove extra joins lossless (§4.1.1 condition 1).
func (e *Engine) AddForeignKey(fk catalog.ForeignKey) error {
	return e.cat.AddForeignKey(fk)
}

// CreateSummaryTable compiles, registers, and materializes one summary table
// definition, returning the compiled AST and its materialized row count.
func (e *Engine) CreateSummaryTable(ctx context.Context, name, sql string) (*core.CompiledAST, int, error) {
	span := e.startSpan(ctx, "maintain")
	defer span.End()
	ctx = obs.ContextWithSpan(ctx, span)
	ca, err := e.rw.CompileAST(catalog.ASTDef{Name: name, SQL: sql})
	if err != nil {
		return nil, 0, err
	}
	if err := e.cat.RegisterAST(catalog.ASTDef{Name: name, SQL: sql}); err != nil {
		return nil, 0, err
	}
	res, err := e.runPlan(ctx, ca.Graph)
	if err != nil {
		e.cat.UnregisterAST(name)
		return nil, 0, fmt.Errorf("astdb: materializing %s: %w", name, err)
	}
	e.store.Put(ca.Table, res.Rows)
	e.mu.Lock()
	old := e.astsNow()
	next := make([]*core.CompiledAST, 0, len(old)+1)
	next = append(append(next, old...), ca)
	e.setASTs(next)
	e.mu.Unlock()
	return ca, len(res.Rows), nil
}

// Insert appends rows to a base table and refreshes every summary table whose
// definition reads it — incrementally where the maintenance plan allows, by
// full recomputation otherwise. Per-AST refresh failures are recorded in the
// returned Stats (the AST goes stale) and joined into the returned error; the
// base insert itself failing aborts.
func (e *Engine) Insert(ctx context.Context, table string, rows [][]sqltypes.Value) ([]maintain.Stats, error) {
	span := e.startSpan(ctx, "maintain")
	defer span.End()
	meta, found := e.cat.Table(table)
	if !found {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, table)
	}
	// Reject malformed rows before any incremental merge sees them: a base
	// insert aborting halfway leaves every affected AST ahead of the base
	// tables (stale), which callers cannot distinguish from a soft per-AST
	// refresh failure.
	for i, r := range rows {
		if len(r) != len(meta.Columns) {
			return nil, fmt.Errorf("astdb: row %d has %d values, table %s has %d columns",
				i, len(r), meta.Name, len(meta.Columns))
		}
	}
	if _, ok := e.store.Table(table); !ok {
		e.store.Create(meta)
	}
	return e.maint.ApplyInsert(e.maintPlans(), table, rows)
}

// Refresh fully recomputes summary tables from the current base data: the
// named ones, or every registered one when names is empty. A failed refresh
// marks that AST stale and counts toward quarantine; failures are joined into
// the returned error and the Stats slice is always complete.
func (e *Engine) Refresh(ctx context.Context, names ...string) ([]maintain.Stats, error) {
	span := e.startSpan(ctx, "maintain")
	defer span.End()
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []maintain.Stats
	var errs []error
	for _, p := range e.maintPlans() {
		if len(names) > 0 && !want[p.AST.Def.Name] {
			continue
		}
		st, err := e.maint.RefreshFull(p)
		out = append(out, st)
		if err != nil {
			errs = append(errs, err)
		}
	}
	return out, errors.Join(errs...)
}

// maintPlans returns the maintenance plans for the current AST set, reusing
// the analysis until the set changes. The steady state is one atomic load;
// only the first call after an AST-set change pays the analysis under mu.
func (e *Engine) maintPlans() []*maintain.Plan {
	if p := e.plans.Load(); p != nil {
		return *p
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if p := e.plans.Load(); p != nil {
		return *p
	}
	asts := e.astsNow()
	plans := make([]*maintain.Plan, 0, len(asts))
	for _, ca := range asts {
		plans = append(plans, e.maint.Analyze(ca))
	}
	e.plans.Store(&plans)
	return plans
}

// sortedByName orders compiled ASTs by name (for deterministic reporting).
func sortedByName(asts []*core.CompiledAST) []*core.CompiledAST {
	out := append([]*core.CompiledAST(nil), asts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Def.Name < out[j].Def.Name })
	return out
}
