package astdb_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/astdb"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/sqltypes"
	"repro/internal/workload"
)

// plainEnv builds an engine over the demo star schema with no summary
// tables (for legs whose limits would break materialization).
func plainEnv(t *testing.T, opts ...astdb.Option) *astdb.Engine {
	t.Helper()
	cat := catalog.New()
	db, err := astdb.Open(cat, opts...)
	if err != nil {
		t.Fatal(err)
	}
	workload.Schema(cat)
	workload.Load(cat, db.Store(), workload.StarConfig{NumTrans: 500, Seed: 7})
	return db
}

// errEnv builds an engine over the demo star schema with one summary table.
func errEnv(t *testing.T, opts ...astdb.Option) *astdb.Engine {
	t.Helper()
	cat := catalog.New()
	db, err := astdb.Open(cat, opts...)
	if err != nil {
		t.Fatal(err)
	}
	workload.Schema(cat)
	workload.Load(cat, db.Store(), workload.StarConfig{NumTrans: 500, Seed: 7})
	if _, _, err := db.CreateSummaryTable(context.Background(),
		"byloc", `select flid, count(*) as cnt from trans group by flid`); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTypedErrorSurface locks the errors.Is classification contract the wire
// server and driver build on: every failure class matches exactly one
// sentinel.
func TestTypedErrorSurface(t *testing.T) {
	db := errEnv(t)
	ctx := context.Background()
	sentinels := []struct {
		name string
		err  error
	}{
		{"parse", astdb.ErrParse},
		{"unknown-table", astdb.ErrUnknownTable},
		{"write-protected", astdb.ErrWriteProtected},
		{"budget", astdb.ErrBudgetExceeded},
		{"canceled", astdb.ErrCanceled},
		{"overloaded", astdb.ErrOverloaded},
	}
	check := func(t *testing.T, err error, want error) {
		t.Helper()
		if err == nil {
			t.Fatal("want an error")
		}
		for _, s := range sentinels {
			if got := errors.Is(err, s.err); got != (s.err == want) {
				t.Fatalf("errors.Is(%v, %s) = %v", err, s.name, got)
			}
		}
	}

	t.Run("parse", func(t *testing.T) {
		_, err := db.Query(ctx, "select from where")
		check(t, err, astdb.ErrParse)
	})
	t.Run("bind", func(t *testing.T) {
		// Unknown column is a compile error, not an unknown table.
		_, err := db.Query(ctx, "select nocol from trans")
		check(t, err, astdb.ErrParse)
	})
	t.Run("unknown-table-query", func(t *testing.T) {
		_, err := db.Query(ctx, "select a from nosuch")
		check(t, err, astdb.ErrUnknownTable)
	})
	t.Run("unknown-table-insert", func(t *testing.T) {
		_, err := db.Insert(ctx, "nosuch", [][]sqltypes.Value{{sqltypes.NewInt(1)}})
		check(t, err, astdb.ErrUnknownTable)
	})
	t.Run("unknown-table-delete", func(t *testing.T) {
		_, err := db.Delete(ctx, "delete from nosuch")
		check(t, err, astdb.ErrUnknownTable)
	})
	t.Run("write-protected-dml", func(t *testing.T) {
		_, err := db.Update(ctx, "update byloc set cnt = 0")
		check(t, err, astdb.ErrWriteProtected)
	})
	t.Run("write-protected-insert", func(t *testing.T) {
		_, err := db.ExecStatement(ctx, "insert into byloc values (1, 1)")
		check(t, err, astdb.ErrWriteProtected)
	})
	t.Run("budget", func(t *testing.T) {
		small := plainEnv(t, astdb.WithLimits(astdb.Config{MaxRows: 3}))
		_, err := small.Query(ctx, "select tid from trans")
		check(t, err, astdb.ErrBudgetExceeded)
	})
	t.Run("canceled", func(t *testing.T) {
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		_, err := db.Query(cctx, "select tid from trans")
		check(t, err, astdb.ErrCanceled)
	})
	t.Run("timeout-is-canceled", func(t *testing.T) {
		slow := plainEnv(t, astdb.WithLimits(astdb.Config{Timeout: time.Nanosecond}))
		_, err := slow.Query(ctx, "select tid from trans")
		check(t, err, astdb.ErrCanceled)
	})
	t.Run("overloaded", func(t *testing.T) {
		// The gate's typed rejection is part of the same surface.
		g := exec.NewGate(1, 0)
		release, err := g.Enter(ctx)
		if err != nil {
			t.Fatal(err)
		}
		defer release()
		_, err = g.Enter(ctx)
		check(t, err, astdb.ErrOverloaded)
	})
}

// TestExecStatementDispatch covers the statement entry point the server's
// exec message maps to.
func TestExecStatementDispatch(t *testing.T) {
	db := errEnv(t)
	ctx := context.Background()

	res, err := db.ExecStatement(ctx, "insert into loc values (999, 'Nowhere', 'XX', 'Utopia')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 || res.Table != "loc" {
		t.Fatalf("insert: got %+v", res)
	}

	res, err = db.ExecStatement(ctx, "delete from loc where lid = 999")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("delete affected %d, want 1", res.Affected)
	}

	res, err = db.ExecStatement(ctx, "update trans set qty = qty where tid < 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 0 {
		t.Fatalf("no-op update affected %d", res.Affected)
	}

	if _, err := db.ExecStatement(ctx, "select tid from trans"); !errors.Is(err, astdb.ErrParse) {
		t.Fatalf("SELECT through ExecStatement: want ErrParse, got %v", err)
	}
}
