package astdb

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/maintain"
	"repro/internal/parser"
	"repro/internal/qgm"
	"repro/internal/qgmcheck"
	"repro/internal/sqltypes"
)

// DMLResult reports one executed DELETE or UPDATE: the target table, how many
// rows the statement affected, and the per-AST maintenance outcomes.
type DMLResult struct {
	Table    string
	Affected int
	Stats    []maintain.Stats
}

// Delete executes DELETE FROM t [WHERE ...] and refreshes every summary table
// whose definition reads t — by count-tracked delta retirement where the
// maintenance plan allows, by full recomputation otherwise. Per-AST refresh
// failures are recorded in the returned Stats (the AST goes stale) and joined
// into the returned error; a statement-level error (parse, unknown table,
// predicate evaluation) aborts before anything is mutated.
func (e *Engine) Delete(ctx context.Context, sql string) (*DMLResult, error) {
	span := e.startSpan(ctx, "maintain")
	defer span.End()
	dml, err := e.compileDML(sql, qgm.DMLDelete)
	if err != nil {
		return nil, err
	}
	n, stats, err := e.maint.ApplyDelete(e.maintPlans(), dml)
	return &DMLResult{Table: dml.Table.Name, Affected: n, Stats: stats}, err
}

// Update executes UPDATE t SET ... [WHERE ...] and refreshes every summary
// table whose definition reads t; the incremental path applies the delete
// delta of the old rows and the insert delta of the new rows in one merge.
// Error semantics match Delete.
func (e *Engine) Update(ctx context.Context, sql string) (*DMLResult, error) {
	span := e.startSpan(ctx, "maintain")
	defer span.End()
	dml, err := e.compileDML(sql, qgm.DMLUpdate)
	if err != nil {
		return nil, err
	}
	n, stats, err := e.maint.ApplyUpdate(e.maintPlans(), dml)
	return &DMLResult{Table: dml.Table.Name, Affected: n, Stats: stats}, err
}

// compileDML parses and builds one DML statement of the expected kind,
// rejecting statements that target a summary table: materializations are
// system-maintained, and mutating one directly would silently break the
// freshness contract.
func (e *Engine) compileDML(sql string, kind qgm.DMLKind) (*qgm.DML, error) {
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrParse, err)
	}
	var table string
	switch t := stmt.(type) {
	case *parser.DeleteStmt:
		if kind != qgm.DMLDelete {
			return nil, fmt.Errorf("%w: expected an UPDATE statement, got DELETE", ErrParse)
		}
		table = t.Table
	case *parser.UpdateStmt:
		if kind != qgm.DMLUpdate {
			return nil, fmt.Errorf("%w: expected a DELETE statement, got UPDATE", ErrParse)
		}
		table = t.Table
	default:
		return nil, fmt.Errorf("%w: expected a %v statement", ErrParse, kind)
	}
	if err := e.rejectSummaryTarget(table); err != nil {
		return nil, err
	}
	var dml *qgm.DML
	switch t := stmt.(type) {
	case *parser.DeleteStmt:
		dml, err = qgm.BuildDelete(t, e.cat)
	default:
		dml, err = qgm.BuildUpdate(t.(*parser.UpdateStmt), e.cat)
	}
	if err != nil {
		return nil, compileError(err)
	}
	if e.verifyPlans {
		if verr := qgmcheck.AsError(qgmcheck.CheckDML(dml)); verr != nil {
			return nil, fmt.Errorf("astdb: built %v failed verification: %w", dml.Kind, verr)
		}
	}
	return dml, nil
}

// rejectSummaryTarget returns ErrWriteProtected when table names a registered
// summary table: materializations are system-maintained.
func (e *Engine) rejectSummaryTarget(table string) error {
	for _, def := range e.cat.ASTs() {
		if strings.EqualFold(def.Name, table) {
			return fmt.Errorf("%w: %q is system-maintained", ErrWriteProtected, table)
		}
	}
	return nil
}

// ExecStatement executes one DML statement given as SQL text — INSERT ...
// VALUES, DELETE, or UPDATE — and reports the affected-row count plus the
// per-AST maintenance outcomes. It is the single statement entry point the
// wire server's exec message and the driver's ExecContext map to; SELECTs
// belong to Query and DDL to CreateTable/CreateSummaryTable.
func (e *Engine) ExecStatement(ctx context.Context, sql string) (*DMLResult, error) {
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrParse, err)
	}
	switch s := stmt.(type) {
	case *parser.InsertStmt:
		return e.insertStmt(ctx, s)
	case *parser.DeleteStmt:
		return e.Delete(ctx, sql)
	case *parser.UpdateStmt:
		return e.Update(ctx, sql)
	default:
		return nil, fmt.Errorf("%w: expected INSERT, DELETE, or UPDATE, got %s", ErrParse, statementKind(stmt))
	}
}

// statementKind names a parsed statement for error messages.
func statementKind(stmt parser.Statement) string {
	switch stmt.(type) {
	case *parser.SelectStmt:
		return "SELECT"
	case *parser.CreateTableStmt:
		return "CREATE TABLE"
	case *parser.CreateASTStmt:
		return "CREATE SUMMARY TABLE"
	case *parser.ExplainStmt:
		return "EXPLAIN"
	default:
		return fmt.Sprintf("%T", stmt)
	}
}

// insertStmt executes a parsed INSERT ... VALUES statement: literal rows only,
// with ISO date strings coerced into DATE-typed columns (the same contract the
// astrw shell applies). Summary tables are write-protected here exactly like
// DELETE/UPDATE targets.
func (e *Engine) insertStmt(ctx context.Context, s *parser.InsertStmt) (*DMLResult, error) {
	if err := e.rejectSummaryTarget(s.Table); err != nil {
		return nil, err
	}
	meta, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, s.Table)
	}
	rows := make([][]sqltypes.Value, 0, len(s.Rows))
	for _, row := range s.Rows {
		vals := make([]sqltypes.Value, len(row))
		for i, expr := range row {
			lit, ok := expr.(*parser.Lit)
			if !ok {
				return nil, fmt.Errorf("%w: INSERT values must be literals, got %s", ErrParse, expr.SQL())
			}
			vals[i] = lit.Val
			if i < len(meta.Columns) && meta.Columns[i].Type == sqltypes.KindDate &&
				lit.Val.Kind() == sqltypes.KindString {
				d, err := sqltypes.ParseDate(lit.Val.Str())
				if err != nil {
					return nil, fmt.Errorf("%w: %w", ErrParse, err)
				}
				vals[i] = d
			}
		}
		rows = append(rows, vals)
	}
	stats, err := e.Insert(ctx, s.Table, rows)
	if err != nil && stats == nil {
		return nil, err
	}
	return &DMLResult{Table: meta.Name, Affected: len(rows), Stats: stats}, err
}

// MaintenanceRoute is one summary table's entry in a maintenance-routing
// report: how DML on the probed table refreshes it, and why.
type MaintenanceRoute struct {
	AST      string
	Strategy string // "incremental" or "full"
	Reason   string // why full, when it is ("" for incremental)
	Status   string // catalog status: "fresh", "stale", or "quarantined"
}

// MaintenanceReport is the EXPLAIN of a DELETE or UPDATE: instead of a query
// plan it shows, per summary table reading the target table, the maintenance
// routing the statement would take. Rendering is deterministic (routes in AST
// name order).
type MaintenanceReport struct {
	Statement string
	Kind      string // "DELETE" or "UPDATE"
	Table     string
	Routes    []MaintenanceRoute
}

// ExplainDML plans one DELETE or UPDATE statement without executing it and
// reports its per-AST maintenance routing. The statement is fully compiled
// (parse, bind, type-check), so EXPLAIN rejects exactly what execution would.
func (e *Engine) ExplainDML(ctx context.Context, sql string) (*MaintenanceReport, error) {
	span := e.startSpan(ctx, "explain")
	defer span.End()
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	if ex, ok := stmt.(*parser.ExplainStmt); ok && ex.DML != nil {
		stmt = ex.DML
	}
	var dml *qgm.DML
	switch t := stmt.(type) {
	case *parser.DeleteStmt:
		dml, err = e.compileDML(t.SQL(), qgm.DMLDelete)
	case *parser.UpdateStmt:
		dml, err = e.compileDML(t.SQL(), qgm.DMLUpdate)
	default:
		return nil, fmt.Errorf("astdb: ExplainDML wants a DELETE or UPDATE statement")
	}
	if err != nil {
		return nil, err
	}
	rep := &MaintenanceReport{Statement: stmt.(parser.Statement).SQL(), Kind: dml.Kind.String(), Table: dml.Table.Name}
	plans := e.maintPlans()
	for _, ca := range sortedByName(e.ASTs()) {
		var p *maintain.Plan
		for _, cand := range plans {
			if cand.Name() == ca.Def.Name {
				p = cand
				break
			}
		}
		if p == nil || !p.ReadsTable(dml.Table.Name) {
			continue
		}
		route := MaintenanceRoute{AST: p.Name(), Status: "fresh"}
		st := e.cat.Status(p.Name())
		switch {
		case st.Quarantined:
			route.Status = "quarantined"
		case st.Stale:
			route.Status = "stale"
		}
		strat, reason := p.DeleteRouting(dml.Table.Name)
		if strat == maintain.Incremental && route.Status != "fresh" {
			// Runtime forces untrusted materializations through a full
			// recompute; report the routing that would actually run.
			strat, reason = maintain.FullRecompute, "materialization is "+route.Status+"; recovery requires a full recompute"
		}
		route.Strategy = strat.String()
		route.Reason = reason
		rep.Routes = append(rep.Routes, route)
	}
	return rep, nil
}

// Render formats the report for the CLI.
func (r *MaintenanceReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s on %s: maintenance routing\n", r.Kind, r.Table)
	if len(r.Routes) == 0 {
		sb.WriteString("  no summary table reads " + r.Table + "\n")
		return sb.String()
	}
	for _, rt := range r.Routes {
		fmt.Fprintf(&sb, "  %s [%s]: %s", rt.AST, rt.Status, rt.Strategy)
		if rt.Reason != "" {
			sb.WriteString(" — " + rt.Reason)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
