package astdb

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/maintain"
	"repro/internal/parser"
	"repro/internal/qgm"
)

// DMLResult reports one executed DELETE or UPDATE: the target table, how many
// rows the statement affected, and the per-AST maintenance outcomes.
type DMLResult struct {
	Table    string
	Affected int
	Stats    []maintain.Stats
}

// Delete executes DELETE FROM t [WHERE ...] and refreshes every summary table
// whose definition reads t — by count-tracked delta retirement where the
// maintenance plan allows, by full recomputation otherwise. Per-AST refresh
// failures are recorded in the returned Stats (the AST goes stale) and joined
// into the returned error; a statement-level error (parse, unknown table,
// predicate evaluation) aborts before anything is mutated.
func (e *Engine) Delete(ctx context.Context, sql string) (*DMLResult, error) {
	span := e.startSpan(ctx, "maintain")
	defer span.End()
	dml, err := e.compileDML(sql, qgm.DMLDelete)
	if err != nil {
		return nil, err
	}
	n, stats, err := e.maint.ApplyDelete(e.maintPlans(), dml)
	return &DMLResult{Table: dml.Table.Name, Affected: n, Stats: stats}, err
}

// Update executes UPDATE t SET ... [WHERE ...] and refreshes every summary
// table whose definition reads t; the incremental path applies the delete
// delta of the old rows and the insert delta of the new rows in one merge.
// Error semantics match Delete.
func (e *Engine) Update(ctx context.Context, sql string) (*DMLResult, error) {
	span := e.startSpan(ctx, "maintain")
	defer span.End()
	dml, err := e.compileDML(sql, qgm.DMLUpdate)
	if err != nil {
		return nil, err
	}
	n, stats, err := e.maint.ApplyUpdate(e.maintPlans(), dml)
	return &DMLResult{Table: dml.Table.Name, Affected: n, Stats: stats}, err
}

// compileDML parses and builds one DML statement of the expected kind,
// rejecting statements that target a summary table: materializations are
// system-maintained, and mutating one directly would silently break the
// freshness contract.
func (e *Engine) compileDML(sql string, kind qgm.DMLKind) (*qgm.DML, error) {
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	var table string
	switch t := stmt.(type) {
	case *parser.DeleteStmt:
		if kind != qgm.DMLDelete {
			return nil, fmt.Errorf("astdb: expected an UPDATE statement, got DELETE")
		}
		table = t.Table
	case *parser.UpdateStmt:
		if kind != qgm.DMLUpdate {
			return nil, fmt.Errorf("astdb: expected a DELETE statement, got UPDATE")
		}
		table = t.Table
	default:
		return nil, fmt.Errorf("astdb: expected a %v statement", kind)
	}
	for _, def := range e.cat.ASTs() {
		if strings.EqualFold(def.Name, table) {
			return nil, fmt.Errorf("astdb: %q is a summary table; its contents are system-maintained", table)
		}
	}
	switch t := stmt.(type) {
	case *parser.DeleteStmt:
		return qgm.BuildDelete(t, e.cat)
	default:
		return qgm.BuildUpdate(t.(*parser.UpdateStmt), e.cat)
	}
}

// MaintenanceRoute is one summary table's entry in a maintenance-routing
// report: how DML on the probed table refreshes it, and why.
type MaintenanceRoute struct {
	AST      string
	Strategy string // "incremental" or "full"
	Reason   string // why full, when it is ("" for incremental)
	Status   string // catalog status: "fresh", "stale", or "quarantined"
}

// MaintenanceReport is the EXPLAIN of a DELETE or UPDATE: instead of a query
// plan it shows, per summary table reading the target table, the maintenance
// routing the statement would take. Rendering is deterministic (routes in AST
// name order).
type MaintenanceReport struct {
	Statement string
	Kind      string // "DELETE" or "UPDATE"
	Table     string
	Routes    []MaintenanceRoute
}

// ExplainDML plans one DELETE or UPDATE statement without executing it and
// reports its per-AST maintenance routing. The statement is fully compiled
// (parse, bind, type-check), so EXPLAIN rejects exactly what execution would.
func (e *Engine) ExplainDML(ctx context.Context, sql string) (*MaintenanceReport, error) {
	span := e.startSpan(ctx, "explain")
	defer span.End()
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	if ex, ok := stmt.(*parser.ExplainStmt); ok && ex.DML != nil {
		stmt = ex.DML
	}
	var dml *qgm.DML
	switch t := stmt.(type) {
	case *parser.DeleteStmt:
		dml, err = e.compileDML(t.SQL(), qgm.DMLDelete)
	case *parser.UpdateStmt:
		dml, err = e.compileDML(t.SQL(), qgm.DMLUpdate)
	default:
		return nil, fmt.Errorf("astdb: ExplainDML wants a DELETE or UPDATE statement")
	}
	if err != nil {
		return nil, err
	}
	rep := &MaintenanceReport{Statement: stmt.(parser.Statement).SQL(), Kind: dml.Kind.String(), Table: dml.Table.Name}
	plans := e.maintPlans()
	for _, ca := range sortedByName(e.ASTs()) {
		var p *maintain.Plan
		for _, cand := range plans {
			if cand.Name() == ca.Def.Name {
				p = cand
				break
			}
		}
		if p == nil || !p.ReadsTable(dml.Table.Name) {
			continue
		}
		route := MaintenanceRoute{AST: p.Name(), Status: "fresh"}
		st := e.cat.Status(p.Name())
		switch {
		case st.Quarantined:
			route.Status = "quarantined"
		case st.Stale:
			route.Status = "stale"
		}
		strat, reason := p.DeleteRouting(dml.Table.Name)
		if strat == maintain.Incremental && route.Status != "fresh" {
			// Runtime forces untrusted materializations through a full
			// recompute; report the routing that would actually run.
			strat, reason = maintain.FullRecompute, "materialization is "+route.Status+"; recovery requires a full recompute"
		}
		route.Strategy = strat.String()
		route.Reason = reason
		rep.Routes = append(rep.Routes, route)
	}
	return rep, nil
}

// Render formats the report for the CLI.
func (r *MaintenanceReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s on %s: maintenance routing\n", r.Kind, r.Table)
	if len(r.Routes) == 0 {
		sb.WriteString("  no summary table reads " + r.Table + "\n")
		return sb.String()
	}
	for _, rt := range r.Routes {
		fmt.Fprintf(&sb, "  %s [%s]: %s", rt.AST, rt.Status, rt.Strategy)
		if rt.Reason != "" {
			sb.WriteString(" — " + rt.Reason)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
